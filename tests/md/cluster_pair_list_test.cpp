#include "md/cluster_pair_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "md/pair_list.hpp"
#include "util/rng.hpp"

namespace hs::md {
namespace {

std::vector<Vec3> random_positions(int n, const Box& box, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Vec3> x;
  for (int i = 0; i < n; ++i) {
    x.push_back(Vec3{static_cast<float>(rng.uniform(0, box.length(0))),
                     static_cast<float>(rng.uniform(0, box.length(1))),
                     static_cast<float>(rng.uniform(0, box.length(2)))});
  }
  return x;
}

using PairSet = std::set<std::pair<int, int>>;

// Cluster entries may list a pair in either orientation; normalize to
// (min, max) for comparison against the scalar list.
PairSet to_set(const ClusterPairList& list) {
  PairSet s;
  list.for_each_pair([&](std::int32_t i, std::int32_t j) {
    s.insert({std::min(i, j), std::max(i, j)});
  });
  return s;
}

PairSet to_set(const PairList& list) {
  PairSet s;
  for (const auto& p : list.pairs()) s.insert({p.i, p.j});
  return s;
}

TEST(ClusterPairList, LocalListMatchesScalarList) {
  const Box box(6, 6, 6);
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    const auto x = random_positions(400, box, seed);
    PairList scalar;
    scalar.build_local(box, x, 400, 1.0);
    ClusterPairList cluster;
    cluster.build_local(box, x, 400, 1.0);
    EXPECT_EQ(to_set(cluster), to_set(scalar)) << "seed " << seed;
    EXPECT_EQ(cluster.pair_count(), scalar.size());
  }
}

TEST(ClusterPairList, ListsEachPairAtMostOnce) {
  const Box box(5, 5, 5);
  const auto x = random_positions(300, box, 8);
  ClusterPairList cluster;
  cluster.build_local(box, x, 300, 1.2);
  std::size_t visits = 0;
  PairSet seen;
  cluster.for_each_pair([&](std::int32_t i, std::int32_t j) {
    EXPECT_NE(i, j);
    EXPECT_GE(i, 0);
    EXPECT_GE(j, 0);
    seen.insert({std::min(i, j), std::max(i, j)});
    ++visits;
  });
  EXPECT_EQ(visits, seen.size()) << "some pair listed twice";
  EXPECT_EQ(visits, cluster.pair_count());
}

TEST(ClusterPairList, NonlocalHomeHaloMatchesScalar) {
  const Box box(6, 6, 6);
  const auto x = random_positions(300, box, 7);
  const int n_home = 200;
  PairList scalar;
  scalar.build_nonlocal(box, x, n_home, 1.0);
  ClusterPairList cluster;
  cluster.build_nonlocal(box, x, n_home, 1.0);
  EXPECT_EQ(to_set(cluster), to_set(scalar));
}

TEST(ClusterPairList, NonlocalWithZoneFilterMatchesScalar) {
  // With a ZoneFilter the non-local list adds corner-rule halo-halo
  // pairs; the cluster flavour must reproduce the scalar pair set
  // exactly (the runner relies on this for exactly-once coverage).
  const Box box(6, 6, 6);
  for (std::uint64_t seed : {11u, 12u}) {
    const auto x = random_positions(500, box, seed);
    const int n_home = 300;
    ZoneFilter filter;
    filter.decomposed[0] = true;
    filter.decomposed[1] = true;
    filter.hi[0] = 3.0f;
    filter.hi[1] = 4.0f;
    PairList scalar;
    scalar.build_nonlocal(box, x, n_home, 1.0, &filter);
    ClusterPairList cluster;
    cluster.build_nonlocal(box, x, n_home, 1.0, &filter);
    EXPECT_EQ(to_set(cluster), to_set(scalar)) << "seed " << seed;
    EXPECT_EQ(cluster.pair_count(), scalar.size());
  }
}

TEST(ClusterPairList, NonlocalEmptyHaloYieldsEmptyList) {
  const Box box(5, 5, 5);
  const auto x = random_positions(100, box, 8);
  ClusterPairList cluster;
  cluster.build_nonlocal(box, x, 100, 1.0);
  EXPECT_EQ(cluster.pair_count(), 0u);
  EXPECT_TRUE(cluster.i_entries().empty());
}

TEST(ClusterPairList, PruneMatchesScalarSurvivors) {
  const Box box(6, 6, 6);
  auto x = random_positions(300, box, 9);
  ClusterPairList cluster;
  cluster.build_local(box, x, 300, 1.2);
  PairList scalar;
  scalar.build_local(box, x, 300, 1.2);
  const std::size_t before = cluster.pair_count();
  const std::size_t removed = cluster.prune(box, x, 1.0);
  EXPECT_EQ(cluster.pair_count() + removed, before);
  scalar.prune(box, x, 1.0);
  // Entry-granular prune keeps whole j-entries, so the cluster list may
  // retain extra (distant, zero-force) pairs — but never fewer than the
  // scalar survivors, and it must have dropped something here.
  EXPECT_GT(removed, 0u);
  const PairSet cs = to_set(cluster);
  for (const auto& p : to_set(scalar)) {
    EXPECT_TRUE(cs.count(p)) << p.first << "," << p.second;
  }
}

TEST(ClusterPairList, BufferedListSurvivesSmallDisplacements) {
  // Verlet-buffer contract, cluster flavour: built with rlist = rc +
  // buffer, the masked pair set covers every pair within rc after
  // displacements below buffer/2 per atom.
  const Box box(6, 6, 6);
  auto x = random_positions(300, box, 10);
  const double rc = 0.9, buffer = 0.2;
  ClusterPairList cluster;
  cluster.build_local(box, x, 300, rc + buffer);
  util::Rng rng(11);
  auto moved = x;
  for (auto& p : moved) {
    const float d = static_cast<float>(buffer / 2.0 * 0.99 / std::sqrt(3.0));
    p = box.wrap(p + Vec3{static_cast<float>(rng.uniform(-d, d)),
                          static_cast<float>(rng.uniform(-d, d)),
                          static_cast<float>(rng.uniform(-d, d))});
  }
  const PairSet listed = to_set(cluster);
  for (int i = 0; i < 300; ++i) {
    for (int j = i + 1; j < 300; ++j) {
      if (box.distance2(moved[static_cast<std::size_t>(i)],
                        moved[static_cast<std::size_t>(j)]) <=
          static_cast<float>(rc * rc)) {
        EXPECT_TRUE(listed.count({i, j})) << i << "," << j;
      }
    }
  }
}

TEST(ClusterPairList, RebuildReusesStorageAndMatches) {
  // The list object is rebuilt in place across steps; the second build
  // must be indistinguishable from a fresh object's.
  const Box box(6, 6, 6);
  ClusterPairList reused;
  for (std::uint64_t seed = 20; seed < 24; ++seed) {
    const auto x = random_positions(350, box, seed);
    reused.build_local(box, x, 350, 1.0);
    ClusterPairList fresh;
    fresh.build_local(box, x, 350, 1.0);
    EXPECT_EQ(to_set(reused), to_set(fresh)) << "seed " << seed;
    EXPECT_EQ(reused.pair_count(), fresh.pair_count());
  }
}

TEST(ClusterPairList, TinyAndEmptySystemsAreSafe) {
  const Box box(3, 3, 3);
  ClusterPairList cluster;
  cluster.build_local(box, {}, 0, 1.0);
  EXPECT_EQ(cluster.pair_count(), 0u);
  // 1, 2, 3, 5 atoms: exercise pad slots in every cluster shape.
  for (int n : {1, 2, 3, 5}) {
    const auto x = random_positions(n, box, 30 + static_cast<std::uint64_t>(n));
    cluster.build_local(box, x, n, 1.0);
    PairList scalar;
    scalar.build_local(box, x, n, 1.0);
    EXPECT_EQ(to_set(cluster), to_set(scalar)) << n << " atoms";
  }
}

TEST(ClusterPairList, ReleaseBuildScratchKeepsThePairSet) {
  // The prepared-state snapshot path: a built list with its build staging
  // dropped must still enumerate, prune, and rebuild exactly like an
  // untouched one — release_build_scratch only frees memory.
  const Box box(6, 6, 6);
  const auto x = random_positions(400, box, 11);
  ClusterPairList reference;
  reference.build_local(box, x, 400, 1.0);
  ClusterPairList released;
  released.build_local(box, x, 400, 1.0);
  released.release_build_scratch();

  EXPECT_EQ(to_set(released), to_set(reference));
  EXPECT_EQ(released.pair_count(), reference.pair_count());
  EXPECT_EQ(released.num_clusters(), reference.num_clusters());

  // Pruning after release behaves identically (it reads only the pair
  // set and positions, never the staging).
  ClusterPairList ref_pruned;
  ref_pruned.build_local(box, x, 400, 1.0);
  const std::size_t ref_dropped = ref_pruned.prune(box, x, 0.8);
  EXPECT_EQ(released.prune(box, x, 0.8), ref_dropped);
  EXPECT_EQ(to_set(released), to_set(ref_pruned));

  // A later rebuild re-creates the staging from scratch.
  const auto y = random_positions(400, box, 12);
  released.build_local(box, y, 400, 1.0);
  reference.build_local(box, y, 400, 1.0);
  EXPECT_EQ(to_set(released), to_set(reference));
}

TEST(ClusterPairList, GatherAtomsResolvePads) {
  const Box box(4, 4, 4);
  const auto x = random_positions(37, box, 40);  // not a multiple of 4
  ClusterPairList cluster;
  cluster.build_local(box, x, 37, 1.0);
  const auto atoms = cluster.cluster_atoms();
  const auto gather = cluster.gather_atoms();
  ASSERT_EQ(atoms.size(), gather.size());
  ASSERT_EQ(atoms.size(),
            static_cast<std::size_t>(cluster.num_clusters()) *
                ClusterPairList::kClusterSize);
  for (std::size_t k = 0; k < atoms.size(); ++k) {
    if (atoms[k] >= 0) {
      EXPECT_EQ(gather[k], atoms[k]);
    } else {
      // Pad slots gather the cluster's first atom (a valid index).
      const std::size_t base =
          k / ClusterPairList::kClusterSize * ClusterPairList::kClusterSize;
      EXPECT_EQ(gather[k], atoms[base]);
    }
  }
}

}  // namespace
}  // namespace hs::md
