#include "runner/md_runner.hpp"

#include <gtest/gtest.h>

#include "runner_test_util.hpp"

namespace hs::runner {
namespace {

using testing::FunctionalRig;
using testing::SkeletonRig;
using testing::reference_trajectory;

struct TransportCase {
  const char* name;
  halo::Transport transport;
  dd::GridDims dims;
  int nodes;
  int gpus_per_node;
};

class FunctionalTrajectory : public ::testing::TestWithParam<TransportCase> {};

TEST_P(FunctionalTrajectory, MatchesSingleRankReference) {
  const auto& tc = GetParam();
  RunConfig cfg;
  cfg.transport = tc.transport;
  auto rig = FunctionalRig::make(
      tc.dims, sim::Topology::dgx_h100(tc.nodes, tc.gpus_per_node), cfg);

  // Snapshot the initial global system for the reference.
  const md::System start = rig.dd->gather();
  constexpr int kSteps = 6;
  rig.runner->run(kSteps);
  const md::System ref =
      reference_trajectory(start, rig.ff, kSteps, cfg.dt_fs * 1e-3);

  const md::System got = rig.dd->gather();
  double max_err = 0.0;
  for (int i = 0; i < ref.natoms(); ++i) {
    const md::Vec3 d = ref.box.min_image(got.x[static_cast<std::size_t>(i)],
                                         ref.x[static_cast<std::size_t>(i)]);
    max_err = std::max(max_err, static_cast<double>(md::norm(d)));
  }
  EXPECT_LT(max_err, 5e-4) << "trajectory diverged from reference";
}

INSTANTIATE_TEST_SUITE_P(
    Transports, FunctionalTrajectory,
    ::testing::Values(
        TransportCase{"shmem_nvlink_1d", halo::Transport::Shmem,
                      dd::GridDims{4, 1, 1}, 1, 4},
        TransportCase{"shmem_mixed_2d", halo::Transport::Shmem,
                      dd::GridDims{2, 2, 1}, 2, 2},
        TransportCase{"shmem_ib_1d", halo::Transport::Shmem,
                      dd::GridDims{4, 1, 1}, 4, 1},
        TransportCase{"mpi_nvlink_1d", halo::Transport::Mpi,
                      dd::GridDims{4, 1, 1}, 1, 4},
        TransportCase{"tmpi_nvlink_1d", halo::Transport::ThreadMpi,
                      dd::GridDims{4, 1, 1}, 1, 4},
        TransportCase{"tmpi_nvlink_3d", halo::Transport::ThreadMpi,
                      dd::GridDims{2, 2, 2}, 1, 8},
        TransportCase{"mpi_ib_2d", halo::Transport::Mpi,
                      dd::GridDims{2, 2, 1}, 4, 1}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(MdRunner, PruningDoesNotChangeTrajectory) {
  // Drift rebuilds off: this test isolates pruning on a fixed list (a
  // rebuild after the last prune would reset the list sizes compared
  // below; rebuild behaviour has its own tests).
  RunConfig with_prune;
  with_prune.prune_interval = 2;
  with_prune.rebuild_on_drift = false;
  RunConfig without_prune;
  without_prune.prune_interval = 0;
  without_prune.rebuild_on_drift = false;

  auto a = FunctionalRig::make(dd::GridDims{2, 2, 1},
                               sim::Topology::dgx_h100(1, 4), with_prune);
  auto b = FunctionalRig::make(dd::GridDims{2, 2, 1},
                               sim::Topology::dgx_h100(1, 4), without_prune);
  a.runner->run(6);
  b.runner->run(6);
  const md::System ga = a.dd->gather();
  const md::System gb = b.dd->gather();
  for (int i = 0; i < ga.natoms(); ++i) {
    // Pruned pairs are beyond the cutoff: identical forces, identical
    // trajectories (bitwise — same arithmetic, same order).
    EXPECT_EQ(ga.x[static_cast<std::size_t>(i)],
              gb.x[static_cast<std::size_t>(i)])
        << i;
  }
  // But the prune did happen.
  EXPECT_LT(a.runner->pair_lists()[0].local.size(),
            b.runner->pair_lists()[0].local.size());
}

TEST(MdRunner, DriftRebuildTriggersAndPreservesTrajectory) {
  // The hot jittered-lattice start drifts ~0.01 nm/step; with buffer
  // rlist - cutoff = 0.1 the half-buffer limit (0.05) is crossed within
  // 6 steps, so rebuilds must fire. The rebuilt lists cover the same
  // physical pair set (drift < buffer), so the trajectory may differ
  // from the fixed-list run only by float summation order.
  RunConfig rebuild_cfg;  // rebuild_on_drift defaults on
  RunConfig fixed_cfg;
  fixed_cfg.rebuild_on_drift = false;

  auto a = FunctionalRig::make(dd::GridDims{2, 2, 1},
                               sim::Topology::dgx_h100(1, 4), rebuild_cfg);
  auto b = FunctionalRig::make(dd::GridDims{2, 2, 1},
                               sim::Topology::dgx_h100(1, 4), fixed_cfg);
  a.runner->run(6);
  b.runner->run(6);

  std::int64_t rebuilds = 0;
  for (auto c : a.runner->list_rebuilds()) rebuilds += c;
  EXPECT_GT(rebuilds, 0) << "drift never crossed the half-buffer limit";
  for (auto c : b.runner->list_rebuilds()) EXPECT_EQ(c, 0);

  const md::System ga = a.dd->gather();
  const md::System gb = b.dd->gather();
  for (int i = 0; i < ga.natoms(); ++i) {
    const md::Vec3 d = ga.box.min_image(ga.x[static_cast<std::size_t>(i)],
                                        gb.x[static_cast<std::size_t>(i)]);
    EXPECT_LT(md::norm(d), 1e-4f) << i;
  }
}

TEST(MdRunner, NoRebuildInsideBufferIsBitwiseStable) {
  // Within the half-buffer window (3 steps ~ 0.03 nm of drift) the
  // rebuild knob must be a no-op: no rebuilds fire, and the trajectory
  // is bitwise identical to a run with the knob off.
  RunConfig on_cfg;
  RunConfig off_cfg;
  off_cfg.rebuild_on_drift = false;

  auto a = FunctionalRig::make(dd::GridDims{2, 2, 1},
                               sim::Topology::dgx_h100(1, 4), on_cfg);
  auto b = FunctionalRig::make(dd::GridDims{2, 2, 1},
                               sim::Topology::dgx_h100(1, 4), off_cfg);
  a.runner->run(3);
  b.runner->run(3);
  for (auto c : a.runner->list_rebuilds()) EXPECT_EQ(c, 0);

  const md::System ga = a.dd->gather();
  const md::System gb = b.dd->gather();
  for (int i = 0; i < ga.natoms(); ++i) {
    EXPECT_EQ(ga.x[static_cast<std::size_t>(i)],
              gb.x[static_cast<std::size_t>(i)])
        << i;
  }
}

TEST(MdRunner, ClusterKernelsMatchScalarPath) {
  // The cluster fast path evaluates the same pair set as the scalar
  // kernels in float instead of double pair arithmetic; over 6 steps the
  // trajectories agree to well under the reference-test tolerance.
  RunConfig cluster_cfg;  // use_cluster_kernels defaults on
  RunConfig scalar_cfg;
  scalar_cfg.use_cluster_kernels = false;

  auto a = FunctionalRig::make(dd::GridDims{2, 2, 1},
                               sim::Topology::dgx_h100(1, 4), cluster_cfg);
  auto b = FunctionalRig::make(dd::GridDims{2, 2, 1},
                               sim::Topology::dgx_h100(1, 4), scalar_cfg);
  a.runner->run(6);
  b.runner->run(6);

  const md::System ga = a.dd->gather();
  const md::System gb = b.dd->gather();
  double max_err = 0.0;
  for (int i = 0; i < ga.natoms(); ++i) {
    const md::Vec3 d = ga.box.min_image(ga.x[static_cast<std::size_t>(i)],
                                        gb.x[static_cast<std::size_t>(i)]);
    max_err = std::max(max_err, static_cast<double>(md::norm(d)));
  }
  EXPECT_LT(max_err, 1e-4);
}

TEST(MdRunner, CpuPeBarrierPreservesResults) {
  RunConfig cfg;
  cfg.cpu_pe_barrier = true;
  auto a = FunctionalRig::make(dd::GridDims{4, 1, 1},
                               sim::Topology::dgx_h100(1, 4), cfg);
  const md::System start = a.dd->gather();
  a.runner->run(4);
  const md::System ref = reference_trajectory(start, a.ff, 4, cfg.dt_fs * 1e-3);
  const md::System got = a.dd->gather();
  for (int i = 0; i < ref.natoms(); ++i) {
    const md::Vec3 d = ref.box.min_image(got.x[static_cast<std::size_t>(i)],
                                         ref.x[static_cast<std::size_t>(i)]);
    EXPECT_LT(md::norm(d), 5e-4f);
  }
}

TEST(MdRunner, SkeletonRunsAreDeterministic) {
  RunConfig cfg;
  auto a = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  auto b = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  a.runner->run(10);
  b.runner->run(10);
  ASSERT_EQ(a.runner->step_end_times().size(),
            b.runner->step_end_times().size());
  for (std::size_t s = 0; s < a.runner->step_end_times().size(); ++s) {
    EXPECT_EQ(a.runner->step_end_times()[s], b.runner->step_end_times()[s]);
  }
}

TEST(MdRunner, StepTimesAreMonotonic) {
  RunConfig cfg;
  auto rig = SkeletonRig::make(90000, 8, sim::Topology::dgx_h100(2, 4), cfg);
  rig.runner->run(8);
  const auto& ends = rig.runner->step_end_times();
  for (std::size_t s = 1; s < ends.size(); ++s) {
    EXPECT_GT(ends[s], ends[s - 1]);
  }
}

TEST(MdRunner, PerfReportsPositiveThroughput) {
  RunConfig cfg;
  auto rig = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  rig.runner->run(12);
  const PerfReport p = rig.runner->perf();
  EXPECT_GT(p.ms_per_step, 0.0);
  EXPECT_GT(p.ns_per_day, 0.0);
  EXPECT_EQ(p.measured_steps, 9);
  // Cross-check the ns/day formula: dt = 2 fs.
  EXPECT_NEAR(p.ns_per_day, 86.4 * 2.0 / p.ms_per_step, 1e-9);
}

TEST(MdRunner, ShmemBeatsMpiOnSmallIntraNodeSystem) {
  RunConfig shmem_cfg;
  shmem_cfg.transport = halo::Transport::Shmem;
  RunConfig mpi_cfg;
  mpi_cfg.transport = halo::Transport::Mpi;
  auto a = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), shmem_cfg);
  auto b = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), mpi_cfg);
  a.runner->run(12);
  b.runner->run(12);
  EXPECT_GT(a.runner->perf().ns_per_day, b.runner->perf().ns_per_day);
}

TEST(MdRunner, TransportOrderingMatchesPaperIntraNode) {
  // §2.2/§3: thread-MPI's event-driven schedule beats regular MPI where
  // local compute cannot hide communication; the NVSHMEM design replicates
  // that overlap and additionally removes per-pulse copy-engine launches,
  // so at a communication-bound size: SHMEM >= thread-MPI >= MPI.
  auto run_one = [](halo::Transport tr) {
    RunConfig cfg;
    cfg.transport = tr;
    auto rig = SkeletonRig::make(45000, 8, sim::Topology::dgx_h100(1, 8), cfg);
    rig.runner->run(12);
    return rig.runner->perf().ns_per_day;
  };
  const double mpi = run_one(halo::Transport::Mpi);
  const double tmpi = run_one(halo::Transport::ThreadMpi);
  const double shmem = run_one(halo::Transport::Shmem);
  EXPECT_GT(tmpi, mpi);
  EXPECT_GE(shmem, tmpi * 0.98);  // SHMEM at least on par with thread-MPI
}

TEST(MdRunner, ContendedProxySlowsIbRunsDramatically) {
  // §5.5: pinning the NVSHMEM proxy onto a busy core: up to ~50x.
  RunConfig healthy;
  healthy.proxy_placement = pgas::ProxyPlacement::ReservedCore;
  RunConfig contended;
  contended.proxy_placement = pgas::ProxyPlacement::ContendedCore;
  auto a = SkeletonRig::make(90000, 8, sim::Topology::dgx_h100(8, 1), healthy);
  auto b = SkeletonRig::make(90000, 8, sim::Topology::dgx_h100(8, 1), contended);
  a.runner->run(8);
  b.runner->run(8);
  EXPECT_GT(a.runner->perf().ns_per_day, 3.0 * b.runner->perf().ns_per_day);
}

}  // namespace
}  // namespace hs::runner
