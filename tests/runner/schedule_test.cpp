// §5.4 schedule-optimization behaviour: prune placement and the third
// stream change timing but never results.
#include <gtest/gtest.h>

#include "runner_test_util.hpp"

namespace hs::runner {
namespace {

using testing::FunctionalRig;
using testing::SkeletonRig;

double throughput(int atoms, RunConfig cfg) {
  auto rig = SkeletonRig::make(atoms, 4, sim::Topology::dgx_h100(1, 4), cfg);
  rig.runner->run(16);
  return rig.runner->perf(4).ns_per_day;
}

TEST(ScheduleOpt, OptimizedPruneScheduleIsFaster) {
  // §5.4: moving prune off the critical path improves performance (the
  // paper reports up to ~10%). Prune every step to expose the effect.
  for (halo::Transport tr : {halo::Transport::Shmem, halo::Transport::Mpi}) {
    RunConfig optimized;
    optimized.transport = tr;
    optimized.prune_interval = 1;
    RunConfig original = optimized;
    original.prune_low_priority_stream = false;
    const double fast = throughput(90000, optimized);
    const double slow = throughput(90000, original);
    EXPECT_GT(fast, slow) << "transport " << static_cast<int>(tr);
    // The gain is bounded (paper: up to ~10%; allow up to 35% in-model).
    EXPECT_LT(fast / slow, 1.35);
  }
}

TEST(ScheduleOpt, PrunePlacementDoesNotChangeResults) {
  RunConfig optimized;
  optimized.prune_interval = 1;
  RunConfig original = optimized;
  original.prune_low_priority_stream = false;
  original.third_stream_for_update = false;

  auto a = FunctionalRig::make(dd::GridDims{2, 2, 1},
                               sim::Topology::dgx_h100(1, 4), optimized);
  auto b = FunctionalRig::make(dd::GridDims{2, 2, 1},
                               sim::Topology::dgx_h100(1, 4), original);
  a.runner->run(5);
  b.runner->run(5);
  const md::System ga = a.dd->gather();
  const md::System gb = b.dd->gather();
  for (int i = 0; i < ga.natoms(); ++i) {
    const md::Vec3 d = ga.box.min_image(ga.x[static_cast<std::size_t>(i)],
                                        gb.x[static_cast<std::size_t>(i)]);
    EXPECT_LT(md::norm(d), 2e-4f) << i;
  }
}

TEST(ScheduleOpt, ThirdStreamHelpsWhenPruneContends) {
  RunConfig with_third;
  with_third.prune_interval = 1;
  with_third.third_stream_for_update = true;
  RunConfig without_third = with_third;
  without_third.third_stream_for_update = false;
  const double a = throughput(180000, with_third);
  const double b = throughput(180000, without_third);
  EXPECT_GE(a, b * 0.999);  // never slower (ties allowed)
}

TEST(ScheduleOpt, CpuPeBarrierCostsLittleWhenBalanced) {
  RunConfig without;
  RunConfig with = without;
  with.cpu_pe_barrier = true;
  const double a = throughput(90000, without);
  const double b = throughput(90000, with);
  EXPECT_GT(b, 0.85 * a);  // homogeneous load: barrier nearly free
  EXPECT_LE(b, a * 1.001);
}

}  // namespace
}  // namespace hs::runner
