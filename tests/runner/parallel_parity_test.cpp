// Parallel-engine parity tests: the bit-identity contract for partitioned
// (PDES) runs.
//
//  1. --workers=1 vs --workers=N: the raw canonical output (merged trace
//     records with span ids, counters, clocks, Chrome export hash) is
//     byte-identical — the lane structure is per device, so the worker
//     count is pure thread parallelism.
//  2. classic (workers=0) vs partitioned: the *canonicalized* outputs
//     agree — same simulated timeline, same per-step clocks, same fabric /
//     pgas counter totals, same span population up to span-id relabeling
//     (lanes allocate ids from (d+1)<<32; classic from 0).
//  3. Randomized-jitter stress: with deterministic timing jitter enabled,
//     workers=1 and workers=N still agree bit-exactly (per-lane jitter
//     streams are independent of worker interleaving).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dd/geometry.hpp"
#include "halo/workload.hpp"
#include "msg/comm.hpp"
#include "pgas/world.hpp"
#include "runner/md_runner.hpp"
#include "sim/machine.hpp"
#include "sim/trace_export.hpp"

namespace hs {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct CaseSpec {
  long long atoms = 40000;
  int steps = 3;
  sim::Topology topology = sim::Topology::dgx_h100(1, 4);
  halo::Transport transport = halo::Transport::Shmem;
  int workers = 0;
  std::uint64_t jitter_seed = 0;  // 0 = no jitter
  sim::SimTime jitter_ns = 0;
};

struct CaseResult {
  std::string raw;        // span-exact canonical dump (contract 1 and 3)
  std::string canonical;  // span-relabeled dump (contract 2)
  sim::SimTime final_ns = 0;
  std::vector<sim::SimTime> step_ends;
};

CaseResult run_case(const CaseSpec& spec) {
  const int ranks = spec.topology.device_count();
  constexpr double kDensity = 100.0;
  constexpr double kCutoff = 1.30;
  const auto box_len = static_cast<float>(
      std::cbrt(static_cast<double>(spec.atoms) / kDensity));
  const md::Box box(box_len, box_len, box_len);
  const dd::DomainGrid grid(box, dd::choose_grid(box, ranks, kCutoff));

  sim::MachineOptions options;
  options.workers = spec.workers;
  sim::Machine machine(spec.topology, sim::CostModel::h100_eos(), options);
  machine.trace().set_enabled(true);
  machine.enable_telemetry();
  if (spec.jitter_ns > 0) {
    machine.fabric().set_timing_jitter(spec.jitter_seed, spec.jitter_ns);
  }
  pgas::World world(machine);
  msg::Comm comm(machine);
  runner::RunConfig config;
  config.transport = spec.transport;
  runner::MdRunner md(machine, world, comm,
                      halo::make_skeleton_workload(grid, kCutoff, kDensity),
                      config);
  md.run(spec.steps);

  CaseResult result;
  result.final_ns = machine.final_time();
  result.step_ends = md.step_end_times();

  const auto& trace = machine.trace();
  std::ostringstream raw;
  raw << "events=" << machine.events_processed()
      << " final_ns=" << machine.final_time() << "\n";
  raw << "records=" << trace.records().size()
      << " edges=" << trace.edges().size() << "\n";
  for (const auto& r : trace.records()) {
    raw << "R " << r.span << " d" << r.device << " " << r.stream << " "
        << r.name << " [" << r.begin << "," << r.end << "] step=" << r.step
        << " k=" << static_cast<int>(r.kind) << " q=" << r.queue_ns
        << " p=" << r.proxy_ns << " peer=" << r.peer << "\n";
  }
  for (const auto& e : trace.edges()) {
    raw << "E " << e.src << "->" << e.dst << " " << to_string(e.kind) << "\n";
  }
  std::ostringstream chrome;
  sim::write_chrome_trace(trace, chrome);
  raw << "chrome_fnv1a=" << fnv1a(chrome.str()) << "\n";
  {
    std::ostringstream fc;
    print_counters(fc, machine.fabric().counters());
    raw << fc.str();
  }
  {
    std::ostringstream wc;
    print_counters(wc, world.counters());
    raw << wc.str();
  }
  // Per-lane counter rows, field-wise. The aggregate sums above could mask
  // compensating per-lane drift; these assert each device's own row (the
  // lane-homed accumulator) is worker-count independent.
  for (int d = 0; d < ranks; ++d) {
    const sim::FabricCounters& f = machine.fabric().counter_row_of(d);
    raw << "FROW d" << d;
    for (const auto& link : f.by_link) {
      raw << " " << link.transfers << "/" << link.messages << "/"
          << link.bytes;
    }
    raw << " nic=";
    for (const auto v : f.nic_busy_ns) raw << v << ",";
    raw << " q=";
    for (const auto v : f.nic_queue_ns) raw << v << ",";
    raw << " proxy=";
    for (const auto v : f.proxy_delay_ns) raw << v << ",";
    raw << "\n";
    const pgas::WorldCounters& w = world.counter_row_of(d);
    raw << "WROW pe" << d;
    for (const auto& op : w.by_op) raw << " " << op.calls << "/" << op.bytes;
    raw << "\n";
  }
  // The merged Sim-domain telemetry document: per-window series keyed by
  // sim time, so it must be byte-identical across worker counts too.
  {
    std::ostringstream telem;
    machine.telemetry().write_json(telem, /*include_host=*/false);
    raw << telem.str() << "\n";
  }
  for (const auto t : result.step_ends) raw << "step_end=" << t << "\n";
  result.raw = raw.str();

  // Span-relabeled view for classic vs partitioned: keep everything except
  // the span ids themselves (and the edge endpoints, compared by count per
  // kind). Records are re-sorted on content so the master-trace record
  // order (merge order vs interleaved classic order) drops out too.
  std::vector<std::string> lines;
  for (const auto& r : trace.records()) {
    std::ostringstream line;
    line << "R d" << r.device << " " << r.stream << " " << r.name << " ["
         << r.begin << "," << r.end << "] step=" << r.step
         << " k=" << static_cast<int>(r.kind) << " q=" << r.queue_ns
         << " p=" << r.proxy_ns << " peer=" << r.peer;
    lines.push_back(line.str());
  }
  std::sort(lines.begin(), lines.end());
  std::map<std::string, int> edge_kinds;
  for (const auto& e : trace.edges()) ++edge_kinds[to_string(e.kind)];
  std::ostringstream canon;
  canon << "final_ns=" << machine.final_time() << "\n";
  for (const auto& l : lines) canon << l << "\n";
  for (const auto& [kind, n] : edge_kinds) {
    canon << "edges[" << kind << "]=" << n << "\n";
  }
  {
    std::ostringstream fc;
    print_counters(fc, machine.fabric().counters());
    canon << fc.str();
  }
  {
    std::ostringstream wc;
    print_counters(wc, world.counters());
    canon << wc.str();
  }
  for (const auto t : result.step_ends) canon << "step_end=" << t << "\n";
  result.canonical = canon.str();
  return result;
}

void expect_equal_by_line(const std::string& got, const std::string& want,
                          const std::string& label) {
  std::istringstream g(got);
  std::istringstream w(want);
  std::string gl;
  std::string wl;
  std::size_t line = 0;
  while (std::getline(w, wl)) {
    ++line;
    ASSERT_TRUE(std::getline(g, gl))
        << label << ": truncated at line " << line << ": " << wl;
    ASSERT_EQ(gl, wl) << label << ": first divergence at line " << line;
  }
  EXPECT_FALSE(std::getline(g, gl))
      << label << ": extra content after line " << line << ": " << gl;
}

TEST(ParallelParity, WorkerCountIsBitIdentical) {
  // The fig12-shaped case: 16 ranks, mixed NVLink/IB, Shmem transport.
  CaseSpec spec;
  spec.atoms = 180000;
  spec.steps = 4;
  spec.topology = sim::Topology::dgx_h100(4, 4);
  spec.workers = 1;
  const CaseResult oracle = run_case(spec);
  ASSERT_GT(oracle.final_ns, 0);
  for (int workers : {2, 4, 8}) {
    spec.workers = workers;
    const CaseResult got = run_case(spec);
    expect_equal_by_line(got.raw, oracle.raw,
                         "workers=" + std::to_string(workers));
  }
}

TEST(ParallelParity, WorkerCountIsBitIdenticalAcrossTopologies) {
  struct Variant {
    const char* name;
    sim::Topology topology;
    halo::Transport transport;
  };
  const Variant variants[] = {
      {"ib_2x2", sim::Topology::dgx_h100(2, 2), halo::Transport::Shmem},
      {"nvl72", sim::Topology::gb200_nvl72(2, 4), halo::Transport::Shmem},
      {"tmpi_1x4", sim::Topology::dgx_h100(1, 4), halo::Transport::ThreadMpi},
  };
  for (const auto& v : variants) {
    CaseSpec spec;
    spec.topology = v.topology;
    spec.transport = v.transport;
    spec.workers = 1;
    const CaseResult oracle = run_case(spec);
    for (int workers : {2, 4}) {
      spec.workers = workers;
      const CaseResult got = run_case(spec);
      expect_equal_by_line(got.raw, oracle.raw,
                           std::string(v.name) +
                               " workers=" + std::to_string(workers));
    }
  }
}

TEST(ParallelParity, PartitionedMatchesClassicCanonically) {
  for (halo::Transport transport :
       {halo::Transport::Shmem, halo::Transport::ThreadMpi}) {
    CaseSpec spec;
    spec.transport = transport;
    spec.topology = transport == halo::Transport::ThreadMpi
                        ? sim::Topology::dgx_h100(1, 4)
                        : sim::Topology::dgx_h100(2, 2);
    spec.workers = 0;
    const CaseResult classic = run_case(spec);
    spec.workers = 2;
    const CaseResult partitioned = run_case(spec);
    const std::string label =
        transport == halo::Transport::Shmem ? "shmem" : "tmpi";
    EXPECT_EQ(partitioned.final_ns, classic.final_ns) << label;
    EXPECT_EQ(partitioned.step_ends, classic.step_ends) << label;
    expect_equal_by_line(partitioned.canonical, classic.canonical, label);
  }
}

TEST(ParallelParity, JitterStressStaysDeterministicAcrossWorkers) {
  CaseSpec spec;
  spec.topology = sim::Topology::dgx_h100(2, 2);
  spec.jitter_seed = 0xfeedfacecafebeefull;
  spec.jitter_ns = 250;
  spec.workers = 1;
  const CaseResult oracle = run_case(spec);
  for (int workers : {2, 4, 8}) {
    spec.workers = workers;
    const CaseResult got = run_case(spec);
    expect_equal_by_line(got.raw, oracle.raw,
                         "jitter workers=" + std::to_string(workers));
  }
}

TEST(ParallelParity, MpiTransportRefusesPartitionedMode) {
  CaseSpec spec;
  spec.transport = halo::Transport::Mpi;
  spec.workers = 2;
  EXPECT_THROW(run_case(spec), std::invalid_argument);
}

}  // namespace
}  // namespace hs
