// Shared helpers for runner tests.
#pragma once

#include <cmath>
#include <memory>

#include "dd/decomposition.hpp"
#include "md/system.hpp"
#include "runner/md_runner.hpp"
#include "runner/timing.hpp"

namespace hs::runner::testing {

/// Functional rig: real MD on a decomposed grappa system.
struct FunctionalRig {
  md::ForceField ff{md::grappa_atom_types(), 0.9};
  std::unique_ptr<dd::Decomposition> dd;
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<pgas::World> world;
  std::unique_ptr<msg::Comm> comm;
  std::unique_ptr<MdRunner> runner;

  static FunctionalRig make(dd::GridDims dims, sim::Topology topo,
                            RunConfig cfg, int atoms = 4000,
                            std::uint64_t seed = 3) {
    md::GrappaSpec spec;
    spec.target_atoms = atoms;
    spec.density = 50.0;
    spec.seed = seed;
    FunctionalRig rig;
    constexpr double kRlist = 1.0;
    rig.dd = std::make_unique<dd::Decomposition>(md::build_grappa(spec), dims,
                                                 kRlist);
    rig.machine =
        std::make_unique<sim::Machine>(topo, sim::CostModel::h100_eos());
    rig.machine->trace().set_enabled(true);
    rig.world = std::make_unique<pgas::World>(*rig.machine);
    rig.comm = std::make_unique<msg::Comm>(*rig.machine);
    rig.runner = std::make_unique<MdRunner>(
        *rig.machine, *rig.world, *rig.comm,
        halo::make_functional_workload(*rig.dd), cfg, &rig.ff);
    return rig;
  }
};

/// Skeleton rig at a grappa-like size (density 100/nm^3, cubic box).
struct SkeletonRig {
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<pgas::World> world;
  std::unique_ptr<msg::Comm> comm;
  std::unique_ptr<MdRunner> runner;

  static SkeletonRig make(int atoms, int ranks, sim::Topology topo,
                          RunConfig cfg,
                          sim::CostModel cm = sim::CostModel::h100_eos()) {
    const double density = 100.0;
    const double rc = 1.30;  // pair-list radius (cutoff + large nstlist=200 Verlet buffer)
    const float box_len = static_cast<float>(std::cbrt(atoms / density));
    const md::Box box(box_len, box_len, box_len);
    const dd::DomainGrid grid(box, dd::choose_grid(box, ranks, rc));
    SkeletonRig rig;
    rig.machine = std::make_unique<sim::Machine>(topo, cm);
    rig.machine->trace().set_enabled(true);
    rig.world = std::make_unique<pgas::World>(*rig.machine);
    rig.comm = std::make_unique<msg::Comm>(*rig.machine);
    rig.runner = std::make_unique<MdRunner>(
        *rig.machine, *rig.world, *rig.comm,
        halo::make_skeleton_workload(grid, rc, density), cfg);
    return rig;
  }
};

/// Reference single-rank trajectory with the same fixed pair list.
inline md::System reference_trajectory(md::System sys, const md::ForceField& ff,
                                       int steps, double dt_ps,
                                       double rlist = 1.0) {
  md::PairList list;
  list.build_local(sys.box, sys.x, sys.natoms(), rlist);
  const md::LeapfrogIntegrator integ(dt_ps);
  for (int s = 0; s < steps; ++s) {
    std::vector<md::Vec3> f(sys.x.size());
    md::compute_nonbonded(sys.box, ff, sys.x, sys.type, list, f);
    integ.step(sys.box, ff, sys.type, f, sys.v, sys.x);
  }
  return sys;
}

}  // namespace hs::runner::testing
