#include "runner/timing.hpp"

#include <gtest/gtest.h>

#include "runner_test_util.hpp"

namespace hs::runner {
namespace {

using testing::SkeletonRig;

TEST(KernelClassification, PackAndUnpackNames) {
  EXPECT_TRUE(is_pack_kernel("FusedPackCommX"));
  EXPECT_TRUE(is_pack_kernel("PackCommX_p1"));
  EXPECT_TRUE(is_pack_kernel("PackX_p0"));
  EXPECT_TRUE(is_unpack_kernel("FusedCommUnpackF"));
  EXPECT_TRUE(is_unpack_kernel("CommUnpackF_p2"));
  EXPECT_TRUE(is_unpack_kernel("UnpackF_p0"));
  EXPECT_FALSE(is_pack_kernel("nb_local"));
  EXPECT_FALSE(is_unpack_kernel("reduce"));
  EXPECT_FALSE(is_pack_kernel("UnpackF_p0"));
  EXPECT_FALSE(is_unpack_kernel("PackX_p0"));
}

TEST(DeviceTiming, IntervalsSatisfyDefinitions) {
  RunConfig cfg;
  auto rig = SkeletonRig::make(180000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  rig.runner->run(12);
  const auto t = analyze_device_timing(rig.machine->trace(),
                                       rig.runner->step_end_times(), 4);
  EXPECT_GT(t.local_us, 0.0);
  EXPECT_GT(t.nonlocal_us, 0.0);
  EXPECT_GE(t.nonoverlap_us, 0.0);
  // Non-overlap is a suffix of the non-local window.
  EXPECT_LE(t.nonoverlap_us, t.nonlocal_us + 1e-9);
  // Step covers local + exposed non-local.
  EXPECT_GE(t.step_us, t.local_us + t.nonoverlap_us - 1.0);
  EXPECT_NEAR(t.other_us, t.step_us - t.local_us - t.nonoverlap_us, 1e-6);
  EXPECT_EQ(t.measured_steps, 9);
}

TEST(DeviceTiming, WarmupStepsAreExcluded) {
  RunConfig cfg;
  auto rig = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  rig.runner->run(10);
  const auto all = analyze_device_timing(rig.machine->trace(),
                                         rig.runner->step_end_times(), 4, 0);
  const auto tail = analyze_device_timing(rig.machine->trace(),
                                          rig.runner->step_end_times(), 4, 5);
  EXPECT_GT(all.measured_steps, tail.measured_steps);
  EXPECT_GT(tail.local_us, 0.0);
}

TEST(DeviceTiming, MpiExposesMoreNonOverlapThanShmem) {
  // The central §6.3 observation: NVSHMEM overlaps communication with local
  // work; MPI leaves it exposed on the critical path.
  RunConfig shmem_cfg;
  shmem_cfg.transport = halo::Transport::Shmem;
  RunConfig mpi_cfg;
  mpi_cfg.transport = halo::Transport::Mpi;
  auto a = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), shmem_cfg);
  auto b = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), mpi_cfg);
  a.runner->run(12);
  b.runner->run(12);
  const auto ts = analyze_device_timing(a.machine->trace(),
                                        a.runner->step_end_times(), 4);
  const auto tm = analyze_device_timing(b.machine->trace(),
                                        b.runner->step_end_times(), 4);
  EXPECT_LT(ts.nonoverlap_us, tm.nonoverlap_us);
  EXPECT_LT(ts.nonlocal_us, tm.nonlocal_us);
}

TEST(DeviceTiming, LocalWorkGrowsLinearlyWithSystemSize) {
  // §6.3: "local work duration grows nearly linearly (1.7-2.0 ns/atom)".
  RunConfig cfg;
  auto small = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  auto large = SkeletonRig::make(180000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  small.runner->run(10);
  large.runner->run(10);
  const auto ts = analyze_device_timing(small.machine->trace(),
                                        small.runner->step_end_times(), 4);
  const auto tl = analyze_device_timing(large.machine->trace(),
                                        large.runner->step_end_times(), 4);
  // 4x atoms => local work between 3x and 4.5x (the fixed overhead shrinks
  // the ratio slightly below 4).
  EXPECT_GT(tl.local_us, 3.0 * ts.local_us);
  EXPECT_LT(tl.local_us, 4.5 * ts.local_us);
}

TEST(DeviceTiming, EmptyTraceYieldsZeros) {
  sim::Trace trace;
  const auto t = analyze_device_timing(trace, {}, 4);
  EXPECT_EQ(t.local_us, 0.0);
  EXPECT_EQ(t.measured_steps, 0);
}

}  // namespace
}  // namespace hs::runner
