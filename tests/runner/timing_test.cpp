#include "runner/timing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "runner_test_util.hpp"

namespace hs::runner {
namespace {

using testing::SkeletonRig;

TEST(KernelClassification, PackAndUnpackNames) {
  EXPECT_TRUE(is_pack_kernel("FusedPackCommX"));
  EXPECT_TRUE(is_pack_kernel("PackCommX_p1"));
  EXPECT_TRUE(is_pack_kernel("PackX_p0"));
  EXPECT_TRUE(is_unpack_kernel("FusedCommUnpackF"));
  EXPECT_TRUE(is_unpack_kernel("CommUnpackF_p2"));
  EXPECT_TRUE(is_unpack_kernel("UnpackF_p0"));
  EXPECT_FALSE(is_pack_kernel("nb_local"));
  EXPECT_FALSE(is_unpack_kernel("reduce"));
  EXPECT_FALSE(is_pack_kernel("UnpackF_p0"));
  EXPECT_FALSE(is_unpack_kernel("PackX_p0"));
}

TEST(DeviceTiming, IntervalsSatisfyDefinitions) {
  RunConfig cfg;
  auto rig = SkeletonRig::make(180000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  rig.runner->run(12);
  const auto t = analyze_device_timing(rig.machine->trace(),
                                       rig.runner->step_end_times(), 4);
  EXPECT_GT(t.local_us, 0.0);
  EXPECT_GT(t.nonlocal_us, 0.0);
  EXPECT_GE(t.nonoverlap_us, 0.0);
  // Non-overlap is a suffix of the non-local window.
  EXPECT_LE(t.nonoverlap_us, t.nonlocal_us + 1e-9);
  // Step covers local + exposed non-local.
  EXPECT_GE(t.step_us, t.local_us + t.nonoverlap_us - 1.0);
  EXPECT_NEAR(t.other_us, t.step_us - t.local_us - t.nonoverlap_us, 1e-6);
  EXPECT_EQ(t.measured_steps, 9);
}

TEST(DeviceTiming, WarmupStepsAreExcluded) {
  RunConfig cfg;
  auto rig = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  rig.runner->run(10);
  const auto all = analyze_device_timing(rig.machine->trace(),
                                         rig.runner->step_end_times(), 4, 0);
  const auto tail = analyze_device_timing(rig.machine->trace(),
                                          rig.runner->step_end_times(), 4, 5);
  EXPECT_GT(all.measured_steps, tail.measured_steps);
  EXPECT_GT(tail.local_us, 0.0);
}

TEST(DeviceTiming, MpiExposesMoreNonOverlapThanShmem) {
  // The central §6.3 observation: NVSHMEM overlaps communication with local
  // work; MPI leaves it exposed on the critical path.
  RunConfig shmem_cfg;
  shmem_cfg.transport = halo::Transport::Shmem;
  RunConfig mpi_cfg;
  mpi_cfg.transport = halo::Transport::Mpi;
  auto a = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), shmem_cfg);
  auto b = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), mpi_cfg);
  a.runner->run(12);
  b.runner->run(12);
  const auto ts = analyze_device_timing(a.machine->trace(),
                                        a.runner->step_end_times(), 4);
  const auto tm = analyze_device_timing(b.machine->trace(),
                                        b.runner->step_end_times(), 4);
  EXPECT_LT(ts.nonoverlap_us, tm.nonoverlap_us);
  EXPECT_LT(ts.nonlocal_us, tm.nonlocal_us);
}

TEST(DeviceTiming, LocalWorkGrowsLinearlyWithSystemSize) {
  // §6.3: "local work duration grows nearly linearly (1.7-2.0 ns/atom)".
  RunConfig cfg;
  auto small = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  auto large = SkeletonRig::make(180000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  small.runner->run(10);
  large.runner->run(10);
  const auto ts = analyze_device_timing(small.machine->trace(),
                                        small.runner->step_end_times(), 4);
  const auto tl = analyze_device_timing(large.machine->trace(),
                                        large.runner->step_end_times(), 4);
  // 4x atoms => local work between 3x and 4.5x (the fixed overhead shrinks
  // the ratio slightly below 4).
  EXPECT_GT(tl.local_us, 3.0 * ts.local_us);
  EXPECT_LT(tl.local_us, 4.5 * ts.local_us);
}

TEST(TraceAggregation, KernelStatsAndExchangePercentiles) {
  sim::Trace t;
  t.set_enabled(true);
  // Device 0, step 0: exchange window 1000..9000 ns = 8 us.
  t.record(0, "compute", "nb_local", 0, 10000, 0);
  t.record(0, "comm", "PackX_p0", 1000, 2000, 0);
  t.record(0, "comm", "UnpackF_p0", 5000, 9000, 0);
  // Device 0, step 1: window 11000..21000 = 10 us.
  t.record(0, "comm", "PackX_p0", 11000, 12000, 1);
  t.record(0, "comm", "UnpackF_p0", 13000, 21000, 1);
  // Device 1, step 0: window 500..6500 = 6 us.
  t.record(1, "comm", "PackX_p0", 500, 1500, 0);
  t.record(1, "comm", "UnpackF_p0", 2000, 6500, 0);

  const TraceAggregate agg = aggregate_trace(t);
  ASSERT_EQ(agg.kernels.size(), 3u);  // sorted by name
  EXPECT_EQ(agg.kernels[0].name, "PackX_p0");
  EXPECT_EQ(agg.kernels[0].us.count(), 3u);
  EXPECT_DOUBLE_EQ(agg.kernels[0].us.mean(), 1.0);
  EXPECT_EQ(agg.kernels[1].name, "UnpackF_p0");
  EXPECT_DOUBLE_EQ(agg.kernels[1].us.max(), 8.0);
  EXPECT_EQ(agg.kernels[2].name, "nb_local");
  EXPECT_DOUBLE_EQ(agg.kernels[2].us.mean(), 10.0);

  // One exchange sample per (device, step) pair.
  EXPECT_EQ(agg.exchange_us.count(), 3u);
  EXPECT_DOUBLE_EQ(agg.exchange_us.mean(), 8.0);
  EXPECT_DOUBLE_EQ(agg.exchange_percentile(0.0), 6.0);
  EXPECT_DOUBLE_EQ(agg.exchange_percentile(50.0), 8.0);
  EXPECT_DOUBLE_EQ(agg.exchange_percentile(100.0), 10.0);
}

TEST(TraceAggregation, WarmupStepsAreDropped) {
  sim::Trace t;
  t.set_enabled(true);
  t.record(0, "comm", "PackX_p0", 0, 1000, 0);
  t.record(0, "comm", "UnpackF_p0", 2000, 3000, 0);
  t.record(0, "comm", "PackX_p0", 10000, 11000, 1);
  t.record(0, "comm", "UnpackF_p0", 12000, 15000, 1);
  const TraceAggregate agg = aggregate_trace(t, /*warmup=*/1);
  EXPECT_EQ(agg.exchange_us.count(), 1u);
  EXPECT_DOUBLE_EQ(agg.exchange_us.mean(), 5.0);  // 15000 - 10000 ns
  EXPECT_EQ(agg.kernels.size(), 2u);
  EXPECT_EQ(agg.kernels[0].us.count(), 1u);
}

TEST(TraceAggregation, WarmupEqualToStepCountLeavesNothing) {
  sim::Trace t;
  t.set_enabled(true);
  t.record(0, "comm", "PackX_p0", 0, 1000, 0);
  t.record(0, "comm", "UnpackF_p0", 2000, 3000, 0);
  t.record(0, "comm", "PackX_p0", 10000, 11000, 1);
  t.record(0, "comm", "UnpackF_p0", 12000, 15000, 1);
  // Steps 0 and 1 exist; warmup == 2 drops both.
  const TraceAggregate agg = aggregate_trace(t, /*warmup=*/2);
  EXPECT_EQ(agg.exchange_us.count(), 0u);
  EXPECT_TRUE(agg.kernels.empty());
  EXPECT_TRUE(std::isnan(agg.exchange_percentile(50.0)));
}

TEST(TraceAggregation, WarmupBeyondStepCountLeavesNothing) {
  sim::Trace t;
  t.set_enabled(true);
  t.record(0, "comm", "PackX_p0", 0, 1000, 0);
  t.record(0, "comm", "UnpackF_p0", 2000, 3000, 0);
  const TraceAggregate agg = aggregate_trace(t, /*warmup=*/100);
  EXPECT_EQ(agg.exchange_us.count(), 0u);
  EXPECT_TRUE(agg.kernels.empty());
  EXPECT_TRUE(std::isnan(agg.exchange_percentile(99.0)));
  EXPECT_EQ(agg.exchange_us.mean(), 0.0);  // RunningStats: 0 for no samples
}

TEST(TraceAggregation, SingleStepTraceAggregates) {
  sim::Trace t;
  t.set_enabled(true);
  t.record(0, "comm", "PackX_p0", 0, 1000, 0);
  t.record(0, "comm", "UnpackF_p0", 2000, 3000, 0);
  const TraceAggregate agg = aggregate_trace(t, /*warmup=*/0);
  EXPECT_EQ(agg.exchange_us.count(), 1u);
  EXPECT_DOUBLE_EQ(agg.exchange_us.mean(), 3.0);  // 3000 ns window
  // A single sample pins every percentile to it.
  EXPECT_DOUBLE_EQ(agg.exchange_percentile(50.0), 3.0);
  EXPECT_DOUBLE_EQ(agg.exchange_percentile(99.0), 3.0);
}

TEST(TraceAggregation, HalfOpenWindowsAreIgnored) {
  sim::Trace t;
  t.set_enabled(true);
  t.record(0, "comm", "PackX_p0", 0, 1000, 0);   // pack with no unpack
  t.record(1, "comm", "UnpackF_p0", 0, 1000, 0); // unpack with no pack
  const TraceAggregate agg = aggregate_trace(t);
  EXPECT_EQ(agg.exchange_us.count(), 0u);
  EXPECT_TRUE(std::isnan(agg.exchange_percentile(50.0)));  // empty -> NaN
}

TEST(TraceAggregation, RealRunProducesConsistentAggregate) {
  RunConfig cfg;
  auto rig = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  rig.runner->run(10);
  const TraceAggregate agg = aggregate_trace(rig.machine->trace(), 2);
  EXPECT_FALSE(agg.kernels.empty());
  // 4 ranks x 8 measured steps.
  EXPECT_EQ(agg.exchange_us.count(), 32u);
  EXPECT_GT(agg.exchange_us.mean(), 0.0);
  EXPECT_LE(agg.exchange_percentile(50.0), agg.exchange_percentile(99.0));
  EXPECT_LE(agg.exchange_percentile(99.0), agg.exchange_us.max() + 1e-9);
  // The aggregate exchange window is the same quantity analyze_device_timing
  // averages as "non-local" work.
  const auto rep = analyze_device_timing(rig.machine->trace(),
                                         rig.runner->step_end_times(), 4);
  EXPECT_NEAR(agg.exchange_us.mean(), rep.nonlocal_us, rep.nonlocal_us * 0.5);
}

TEST(DeviceTiming, EmptyTraceYieldsZeros) {
  sim::Trace trace;
  const auto t = analyze_device_timing(trace, {}, 4);
  EXPECT_EQ(t.local_us, 0.0);
  EXPECT_EQ(t.measured_steps, 0);
}

}  // namespace
}  // namespace hs::runner
