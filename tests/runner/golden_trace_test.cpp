// Golden-trace determinism test.
//
// Runs a reduced fig12_schedule_trace case (both transports, fixed
// configuration — the simulator has no hidden seeds, so the configuration
// IS the seed) and canonicalizes everything observable about the run:
// every engine event count, every trace record's (time, span) pair, every
// causal edge, and the byte-exact Chrome-trace JSON export. The result is
// compared against a checked-in fixture generated before the PR-3 engine /
// device fast-path rewrite, proving the optimization is bit-identical:
// same (time, seq) event order, same spans, same Chrome trace.
//
// Regenerate (only when a deliberate model change lands) with:
//   HS_GOLDEN_REGEN=1 ./runner_tests --gtest_filter='GoldenTrace.*'
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "dd/geometry.hpp"
#include "halo/workload.hpp"
#include "msg/comm.hpp"
#include "pgas/world.hpp"
#include "runner/md_runner.hpp"
#include "sim/machine.hpp"
#include "sim/trace_export.hpp"

namespace hs {
namespace {

constexpr const char* kFixturePath =
    HS_FIXTURE_DIR "/golden_trace_fig12.txt";

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// One transport's run, canonicalized. Mirrors bench/common.hpp run_case at
// fig12's topology shape (2D decomposition => two communication phases)
// but at reduced scale so the fixture stays reviewable.
std::string run_and_canonicalize(halo::Transport transport) {
  constexpr long long kAtoms = 180000;
  constexpr int kSteps = 4;
  const sim::Topology topology = sim::Topology::dgx_h100(4, 4);
  const int ranks = topology.device_count();
  constexpr double kDensity = 100.0;
  constexpr double kCutoff = 1.30;

  const auto box_len = static_cast<float>(
      std::cbrt(static_cast<double>(kAtoms) / kDensity));
  const md::Box box(box_len, box_len, box_len);
  const dd::DomainGrid grid(box, dd::choose_grid(box, ranks, kCutoff));

  sim::Machine machine(topology, sim::CostModel::h100_eos());
  machine.trace().set_enabled(true);
  pgas::World world(machine);
  msg::Comm comm(machine);
  runner::RunConfig config;
  config.transport = transport;
  runner::MdRunner md(machine, world, comm,
                      halo::make_skeleton_workload(grid, kCutoff, kDensity),
                      config);
  md.run(kSteps);

  std::ostringstream out;
  out << "transport=" << (transport == halo::Transport::Mpi ? "mpi" : "shmem")
      << " events=" << machine.engine().events_processed()
      << " final_ns=" << machine.engine().now() << "\n";
  const auto& trace = machine.trace();
  out << "records=" << trace.records().size()
      << " edges=" << trace.edges().size() << "\n";
  for (const auto& r : trace.records()) {
    out << "R " << r.span << " d" << r.device << " " << r.stream << " "
        << r.name << " [" << r.begin << "," << r.end << "] step=" << r.step
        << " k=" << static_cast<int>(r.kind) << " q=" << r.queue_ns
        << " p=" << r.proxy_ns << " peer=" << r.peer << "\n";
  }
  for (const auto& e : trace.edges()) {
    out << "E " << e.src << "->" << e.dst << " " << to_string(e.kind) << "\n";
  }
  // The Chrome export is the user-visible artifact; hash it byte-exactly.
  std::ostringstream chrome;
  sim::write_chrome_trace(trace, chrome);
  const std::string json = chrome.str();
  out << "chrome_bytes=" << json.size() << " chrome_fnv1a=" << fnv1a(json)
      << "\n";
  return out.str();
}

TEST(GoldenTrace, Fig12CaseIsBitIdentical) {
  std::string canonical;
  for (halo::Transport tr : {halo::Transport::Mpi, halo::Transport::Shmem}) {
    canonical += run_and_canonicalize(tr);
  }

  if (std::getenv("HS_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(kFixturePath, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << kFixturePath;
    out << canonical;
    GTEST_SKIP() << "fixture regenerated at " << kFixturePath;
  }

  std::ifstream in(kFixturePath, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing fixture " << kFixturePath
                         << " — regenerate with HS_GOLDEN_REGEN=1";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();

  // Compare line-by-line so a drift reports the first diverging event
  // instead of a megabyte diff.
  std::istringstream got(canonical);
  std::istringstream want(expected);
  std::string got_line;
  std::string want_line;
  std::size_t line = 0;
  while (std::getline(want, want_line)) {
    ++line;
    ASSERT_TRUE(std::getline(got, got_line))
        << "trace truncated at fixture line " << line << ": " << want_line;
    ASSERT_EQ(got_line, want_line) << "first divergence at line " << line;
  }
  EXPECT_FALSE(std::getline(got, got_line))
      << "trace has extra content after fixture line " << line << ": "
      << got_line;
  EXPECT_EQ(canonical, expected);
}

// Determinism within one build: two identical runs must agree bit-exactly
// (guards against unordered containers / pointer-keyed iteration sneaking
// into the hot path, independent of the checked-in fixture).
TEST(GoldenTrace, RepeatedRunsAreBitIdentical) {
  const std::string a = run_and_canonicalize(halo::Transport::Shmem);
  const std::string b = run_and_canonicalize(halo::Transport::Shmem);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace hs
