#include "runner/pme_flow.hpp"

#include <gtest/gtest.h>

namespace hs::runner {
namespace {

PmeFlowReport run(PmeCommMode mode, int pp = 3, int pme = 1,
                  int atoms = 30000) {
  sim::Machine machine(sim::Topology::dgx_h100(1, pp + pme),
                       sim::CostModel::h100_eos());
  pgas::World world(machine);
  PmeFlowConfig cfg;
  cfg.n_pp_ranks = pp;
  cfg.n_pme_ranks = pme;
  cfg.atoms_per_pp_rank = atoms;
  cfg.comm_mode = mode;
  return run_pme_flow(machine, world, cfg);
}

TEST(PmeFlow, CompletesAndReportsSaneNumbers) {
  const auto r = run(PmeCommMode::CpuInitiated);
  EXPECT_GT(r.us_per_step, 0.0);
  EXPECT_GE(r.pme_wait_us, 0.0);
  EXPECT_EQ(r.measured_steps, 9);
}

TEST(PmeFlow, GpuInitiatedBeatsCpuInitiated) {
  // The §7 projection: GPU-initiating the PP<->PME exchange removes the
  // per-step sync + send round trips from the critical path.
  const auto cpu = run(PmeCommMode::CpuInitiated);
  const auto gpu = run(PmeCommMode::GpuInitiated);
  EXPECT_LT(gpu.us_per_step, cpu.us_per_step);
  EXPECT_LT(gpu.pme_wait_us, cpu.pme_wait_us + 1e-9);
}

TEST(PmeFlow, MultiplePmeRanksShareClients) {
  const auto r = run(PmeCommMode::GpuInitiated, /*pp=*/6, /*pme=*/2);
  EXPECT_GT(r.us_per_step, 0.0);
}

TEST(PmeFlow, DeterministicAcrossRuns) {
  const auto a = run(PmeCommMode::GpuInitiated);
  const auto b = run(PmeCommMode::GpuInitiated);
  EXPECT_DOUBLE_EQ(a.us_per_step, b.us_per_step);
  EXPECT_DOUBLE_EQ(a.pme_wait_us, b.pme_wait_us);
}

TEST(PmeFlow, RejectsBadRankSplit) {
  sim::Machine machine(sim::Topology::dgx_h100(1, 4),
                       sim::CostModel::h100_eos());
  pgas::World world(machine);
  PmeFlowConfig cfg;
  cfg.n_pp_ranks = 3;
  cfg.n_pme_ranks = 2;  // 3 + 2 != 4 devices
  EXPECT_THROW(run_pme_flow(machine, world, cfg), std::invalid_argument);
}

TEST(PmeFlow, WaitShrinksWithSmallerGrid) {
  // A smaller PME mesh finishes sooner; the PP-side exposed wait drops.
  auto run_grid = [](std::array<int, 3> grid) {
    sim::Machine machine(sim::Topology::dgx_h100(1, 4),
                         sim::CostModel::h100_eos());
    pgas::World world(machine);
    PmeFlowConfig cfg;
    cfg.comm_mode = PmeCommMode::CpuInitiated;
    cfg.pme_grid = grid;
    return run_pme_flow(machine, world, cfg);
  };
  const auto small = run_grid({32, 32, 32});
  const auto large = run_grid({128, 128, 128});
  EXPECT_LT(small.us_per_step, large.us_per_step);
}

}  // namespace
}  // namespace hs::runner
