// Protocol robustness under timing faults: with pseudo-random extra latency
// injected into every fabric transfer, message arrival order is arbitrary —
// yet the halo signal/event protocols must still produce the exact same
// trajectory. This is the property that separates a correct synchronization
// protocol from one that merely works under the default interleaving.
#include <gtest/gtest.h>

#include "runner_test_util.hpp"

namespace hs::runner {
namespace {

using testing::FunctionalRig;

struct JitterCase {
  const char* name;
  halo::Transport transport;
  dd::GridDims dims;
  int nodes;
  int gpus_per_node;
  std::uint64_t seed;
};

class JitteredTransport : public ::testing::TestWithParam<JitterCase> {};

TEST_P(JitteredTransport, TrajectoryUnchangedUnderTimingFaults) {
  const auto& tc = GetParam();
  RunConfig cfg;
  cfg.transport = tc.transport;

  auto clean = FunctionalRig::make(
      tc.dims, sim::Topology::dgx_h100(tc.nodes, tc.gpus_per_node), cfg);
  clean.runner->run(5);
  const md::System want = clean.dd->gather();

  auto jittered = FunctionalRig::make(
      tc.dims, sim::Topology::dgx_h100(tc.nodes, tc.gpus_per_node), cfg);
  jittered.machine->fabric().set_timing_jitter(tc.seed,
                                               /*max_jitter_ns=*/40000);
  jittered.runner->run(5);
  const md::System got = jittered.dd->gather();

  ASSERT_EQ(got.natoms(), want.natoms());
  for (int i = 0; i < want.natoms(); ++i) {
    // Bitwise identical: jitter may reorder arrivals but never data.
    EXPECT_EQ(got.x[static_cast<std::size_t>(i)],
              want.x[static_cast<std::size_t>(i)])
        << "atom " << i;
    EXPECT_EQ(got.v[static_cast<std::size_t>(i)],
              want.v[static_cast<std::size_t>(i)])
        << "atom " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Faults, JitteredTransport,
    ::testing::Values(
        JitterCase{"shmem_nvlink_seed1", halo::Transport::Shmem,
                   dd::GridDims{2, 2, 2}, 1, 8, 1},
        JitterCase{"shmem_nvlink_seed2", halo::Transport::Shmem,
                   dd::GridDims{2, 2, 2}, 1, 8, 0xfeedULL},
        JitterCase{"shmem_ib", halo::Transport::Shmem, dd::GridDims{2, 2, 1},
                   4, 1, 7},
        JitterCase{"shmem_mixed", halo::Transport::Shmem,
                   dd::GridDims{2, 2, 1}, 2, 2, 11},
        JitterCase{"mpi_mixed", halo::Transport::Mpi, dd::GridDims{2, 2, 1},
                   2, 2, 13},
        JitterCase{"tmpi_nvlink", halo::Transport::ThreadMpi,
                   dd::GridDims{2, 2, 2}, 1, 8, 17}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Robustness, JitterChangesTimingButNotDeterminism) {
  // Same jitter seed twice: identical step times (determinism preserved);
  // different seed: different step times (the fault injection is live).
  RunConfig cfg;
  auto run_with = [&](std::uint64_t seed) {
    auto rig = FunctionalRig::make(dd::GridDims{2, 2, 1},
                                   sim::Topology::dgx_h100(2, 2), cfg);
    rig.machine->fabric().set_timing_jitter(seed, 40000);
    rig.runner->run(5);
    return rig.runner->step_end_times();
  };
  const auto a = run_with(42);
  const auto b = run_with(42);
  const auto c = run_with(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace hs::runner
