// Cross-mode consistency: skeleton (analytic sizes) and functional (real
// atoms) runs of the same configuration must report closely matching
// timing, since the cost model consumes only sizes — this pins the
// skeleton benches to the verified functional path.
#include <gtest/gtest.h>

#include <sstream>

#include "runner_test_util.hpp"

namespace hs::runner {
namespace {

using testing::FunctionalRig;
using testing::SkeletonRig;

TEST(ModeConsistency, SkeletonTimingTracksFunctionalTiming) {
  // Functional: real 20k-atom grappa at density 50 over 2x2x1.
  RunConfig cfg;
  md::GrappaSpec spec;
  spec.target_atoms = 20000;
  spec.density = 50.0;
  const md::System sys = md::build_grappa(spec);
  md::ForceField ff(md::grappa_atom_types(), 0.9);
  constexpr double kRlist = 1.0;
  dd::Decomposition dd(sys, dd::GridDims{2, 2, 1}, kRlist);
  sim::Machine m1(sim::Topology::dgx_h100(1, 4), sim::CostModel::h100_eos());
  pgas::World w1(m1);
  msg::Comm c1(m1);
  MdRunner functional(m1, w1, c1, halo::make_functional_workload(dd), cfg, &ff);
  functional.run(10);

  // Skeleton: same box, same grid, same density.
  sim::Machine m2(sim::Topology::dgx_h100(1, 4), sim::CostModel::h100_eos());
  pgas::World w2(m2);
  msg::Comm c2(m2);
  const dd::DomainGrid grid(sys.box, dd::GridDims{2, 2, 1});
  MdRunner skeleton(m2, w2, c2,
                    halo::make_skeleton_workload(grid, kRlist, spec.density),
                    cfg);
  skeleton.run(10);

  const double f = functional.perf().ms_per_step;
  const double s = skeleton.perf().ms_per_step;
  EXPECT_NEAR(s, f, 0.10 * f) << "skeleton " << s << " vs functional " << f;
}

TEST(RenderTimeline, ProducesReadableGantt) {
  RunConfig cfg;
  auto rig = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  rig.runner->run(6);
  std::ostringstream os;
  render_timeline(rig.machine->trace(), /*device=*/0, /*step=*/4, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("nb_local"), std::string::npos);
  EXPECT_NE(out.find("FusedPackCommX"), std::string::npos);
  EXPECT_NE(out.find("FusedCommUnpackF"), std::string::npos);
  EXPECT_NE(out.find("window:"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(RenderTimeline, EmptySelectionIsGraceful) {
  sim::Trace trace;
  std::ostringstream os;
  render_timeline(trace, 0, 0, os);
  EXPECT_NE(os.str().find("no trace records"), std::string::npos);
}

TEST(ModeConsistency, CudaGraphPreservesFunctionalResults) {
  RunConfig plain;
  RunConfig graphs = plain;
  graphs.use_cuda_graph = true;
  auto a = FunctionalRig::make(dd::GridDims{4, 1, 1},
                               sim::Topology::dgx_h100(1, 4), plain);
  auto b = FunctionalRig::make(dd::GridDims{4, 1, 1},
                               sim::Topology::dgx_h100(1, 4), graphs);
  a.runner->run(6);
  b.runner->run(6);
  const md::System ga = a.dd->gather();
  const md::System gb = b.dd->gather();
  for (int i = 0; i < ga.natoms(); ++i) {
    EXPECT_EQ(ga.x[static_cast<std::size_t>(i)],
              gb.x[static_cast<std::size_t>(i)])
        << i;
  }
  // Graphs never hurt; their gain concentrates at small sizes.
  EXPECT_GE(b.runner->perf().ns_per_day,
            a.runner->perf().ns_per_day * 0.999);
}

TEST(ModeConsistency, GraphModeIsIgnoredForMpi) {
  RunConfig cfg;
  cfg.transport = halo::Transport::Mpi;
  cfg.use_cuda_graph = true;  // must be silently inert (uncapturable)
  RunConfig plain = cfg;
  plain.use_cuda_graph = false;
  auto a = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  auto b = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), plain);
  a.runner->run(8);
  b.runner->run(8);
  EXPECT_EQ(a.runner->step_end_times(), b.runner->step_end_times());
}

}  // namespace
}  // namespace hs::runner
