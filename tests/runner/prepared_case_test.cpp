// The prepare/execute case-lifecycle split (docs: DESIGN.md). Three
// invariants: (1) prepare_case + execute_case reproduces run_case
// exactly, including with recycled arena scratch; (2) a PreparedCase is
// rejected when handed to a spec with different setup axes; (3) a
// functional run seeded with prepared pair lists is bit-identical to one
// that builds its own.
#include <gtest/gtest.h>

#include <stdexcept>

#include "runner/case.hpp"
#include "runner_test_util.hpp"

namespace hs::runner {
namespace {

CaseSpec small_spec() {
  CaseSpec spec;
  spec.atoms = 45000;
  spec.steps = 6;
  spec.warmup = 2;
  return spec;
}

bool same_result(const CaseResult& a, const CaseResult& b) {
  return a.perf.ms_per_step == b.perf.ms_per_step &&
         a.perf.ns_per_day == b.perf.ns_per_day &&
         a.perf.measured_steps == b.perf.measured_steps &&
         a.timing.local_us == b.timing.local_us &&
         a.timing.nonlocal_us == b.timing.nonlocal_us &&
         a.timing.step_us == b.timing.step_us &&
         a.grid.nx == b.grid.nx && a.grid.ny == b.grid.ny &&
         a.grid.nz == b.grid.nz;
}

TEST(PreparedCase, ExecuteMatchesRunCase) {
  const CaseSpec spec = small_spec();
  const CaseResult whole = run_case(spec);
  const PreparedCase prepared = prepare_case(spec);
  EXPECT_EQ(prepared.atoms, spec.atoms);
  EXPECT_EQ(prepared.ranks, spec.topology.device_count());
  EXPECT_TRUE(same_result(execute_case(spec, prepared), whole));
}

TEST(PreparedCase, SharedPreparedAndWarmScratchDoNotChangeResults) {
  const CaseSpec spec = small_spec();
  const CaseResult whole = run_case(spec);
  const PreparedCase prepared = prepare_case(spec);
  CaseScratch scratch;
  // Same prepared object, same scratch, back to back: the second run
  // consumes arenas the first recycled (plus a varied config to prove
  // cross-case reuse, not just repetition).
  EXPECT_TRUE(same_result(execute_case(spec, prepared, &scratch), whole));
  EXPECT_GT(scratch.arenas.size(), 0u);  // arenas actually recycled
  CaseSpec varied = spec;
  varied.config.transport = halo::Transport::Mpi;
  const CaseResult varied_cold = run_case(varied);
  EXPECT_TRUE(
      same_result(execute_case(varied, prepared, &scratch), varied_cold));
  EXPECT_TRUE(same_result(execute_case(spec, prepared, &scratch), whole));
}

TEST(PreparedCase, RejectsMismatchedSetupAxes) {
  const CaseSpec spec = small_spec();
  const PreparedCase prepared = prepare_case(spec);

  CaseSpec wrong_atoms = spec;
  wrong_atoms.atoms = 90000;
  EXPECT_THROW(execute_case(wrong_atoms, prepared), std::invalid_argument);

  CaseSpec wrong_ranks = spec;
  wrong_ranks.topology = sim::Topology::dgx_h100(2, 4);
  EXPECT_THROW(execute_case(wrong_ranks, prepared), std::invalid_argument);

  CaseSpec wrong_dd = spec;
  wrong_dd.dd = dd::GridDims{2, 2, 1};
  EXPECT_THROW(execute_case(wrong_dd, prepared), std::invalid_argument);
}

TEST(PreparedCase, SeededFunctionalListsAreBitIdentical) {
  using testing::FunctionalRig;
  const dd::GridDims dims{2, 1, 1};
  const auto topo = sim::Topology::dgx_h100(1, 2);
  RunConfig cfg;
  cfg.transport = halo::Transport::Shmem;

  FunctionalRig built = FunctionalRig::make(dims, topo, cfg);
  FunctionalRig seeded = FunctionalRig::make(dims, topo, cfg);
  constexpr double kRlist = 1.0;
  const PreparedFunctional prepared = prepare_functional(*seeded.dd, kRlist);
  ASSERT_EQ(prepared.states.size(), seeded.dd->states().size());
  ASSERT_EQ(prepared.lists.size(), seeded.dd->states().size());
  // Re-create the seeded runner with the prepared lists injected.
  seeded.runner = std::make_unique<MdRunner>(
      *seeded.machine, *seeded.world, *seeded.comm,
      halo::make_functional_workload(*seeded.dd), cfg, &seeded.ff,
      &prepared.lists);

  built.runner->run(8);
  seeded.runner->run(8);

  for (std::size_t r = 0; r < built.dd->states().size(); ++r) {
    const dd::DomainState& a = built.dd->states()[r];
    const dd::DomainState& b = seeded.dd->states()[r];
    ASSERT_EQ(a.n_home, b.n_home);
    for (int i = 0; i < a.n_home; ++i) {
      EXPECT_EQ(a.x[static_cast<std::size_t>(i)].x,
                b.x[static_cast<std::size_t>(i)].x);
      EXPECT_EQ(a.x[static_cast<std::size_t>(i)].y,
                b.x[static_cast<std::size_t>(i)].y);
      EXPECT_EQ(a.x[static_cast<std::size_t>(i)].z,
                b.x[static_cast<std::size_t>(i)].z);
    }
  }
}

}  // namespace
}  // namespace hs::runner
