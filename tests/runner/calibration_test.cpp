// Calibration guard: the assembled cost model must keep reproducing the
// paper's published values (Figs 3 and 6) within stated tolerances, so that
// any drift in constants or scheduling logic is caught immediately.
//
// Paper anchors (intra-node, 4x H100, 1D DD, grappa):
//   Fig 3 ns/day:  45k: MPI 1126 / NVSHMEM 1649 (ratio 1.46)
//                 180k: MPI 1058 / NVSHMEM 1103 (ratio 1.04)
//                 360k: MPI  670 / NVSHMEM  671 (ratio 1.00)
//   Fig 6:  local work ~22 us at 11.25k atoms/GPU, ~152 us at 90k
//           (1.7-2.0 ns/atom); MPI non-local >> NVSHMEM non-local at
//           11.25k/GPU (116 vs 64 us); "other" per-step work 30-40 us
//           at small sizes.
#include <gtest/gtest.h>

#include "runner_test_util.hpp"

namespace hs::runner {
namespace {

using testing::SkeletonRig;

struct Result {
  PerfReport perf;
  DeviceTimingReport timing;
};

Result run_intranode(int atoms, halo::Transport transport) {
  RunConfig cfg;
  cfg.transport = transport;
  auto rig = SkeletonRig::make(atoms, 4, sim::Topology::dgx_h100(1, 4), cfg);
  rig.runner->run(20);
  return {rig.runner->perf(4),
          analyze_device_timing(rig.machine->trace(),
                                rig.runner->step_end_times(), 4, 4)};
}

TEST(Calibration, LocalWorkMatchesPaperPerAtomRate) {
  const auto r45 = run_intranode(45000, halo::Transport::Shmem);
  const auto r360 = run_intranode(360000, halo::Transport::Shmem);
  // 11.25k atoms/GPU -> ~22 us (paper Fig 6).
  EXPECT_GT(r45.timing.local_us, 17.0);
  EXPECT_LT(r45.timing.local_us, 30.0);
  // 90k atoms/GPU -> ~152 us.
  EXPECT_GT(r360.timing.local_us, 135.0);
  EXPECT_LT(r360.timing.local_us, 175.0);
}

TEST(Calibration, NonlocalGapAtSmallSizeMatchesPaper) {
  const auto mpi = run_intranode(45000, halo::Transport::Mpi);
  const auto shmem = run_intranode(45000, halo::Transport::Shmem);
  // Paper: 116 us vs 64 us — a ~50 us gap; require a pronounced gap with
  // MPI at least ~1.4x NVSHMEM.
  EXPECT_GT(mpi.timing.nonlocal_us, 1.4 * shmem.timing.nonlocal_us);
  EXPECT_GT(mpi.timing.nonlocal_us, 70.0);
  EXPECT_LT(mpi.timing.nonlocal_us, 140.0);
  EXPECT_GT(shmem.timing.nonlocal_us, 40.0);
  EXPECT_LT(shmem.timing.nonlocal_us, 80.0);
}

TEST(Calibration, OtherPerStepWorkInPaperRange) {
  const auto r = run_intranode(45000, halo::Transport::Shmem);
  // Paper: "other tasks contribute 30-40 us"; allow a generous band.
  EXPECT_GT(r.timing.other_us, 15.0);
  EXPECT_LT(r.timing.other_us, 55.0);
}

TEST(Calibration, Fig3SpeedupShapeIsReproduced) {
  // The headline intra-node result: a large NVSHMEM advantage at 45k that
  // decays toward parity by 360k.
  const double s45 = run_intranode(45000, halo::Transport::Shmem).perf.ns_per_day /
                     run_intranode(45000, halo::Transport::Mpi).perf.ns_per_day;
  const double s180 =
      run_intranode(180000, halo::Transport::Shmem).perf.ns_per_day /
      run_intranode(180000, halo::Transport::Mpi).perf.ns_per_day;
  const double s360 =
      run_intranode(360000, halo::Transport::Shmem).perf.ns_per_day /
      run_intranode(360000, halo::Transport::Mpi).perf.ns_per_day;
  EXPECT_GT(s45, 1.25);  // paper: 1.46
  EXPECT_LT(s45, 1.70);
  EXPECT_GT(s180, 1.00);  // paper: 1.04
  EXPECT_LT(s180, 1.35);
  EXPECT_GT(s360, 0.95);  // paper: 1.00
  EXPECT_LT(s360, 1.20);
  // Monotonic decay of the advantage with system size.
  EXPECT_GT(s45, s180);
  EXPECT_GT(s180, s360);
}

TEST(Calibration, AbsoluteThroughputWithinBandOfPaper) {
  // Fig 3 absolute values; modelled substrate, so allow +-35%.
  const auto mpi45 = run_intranode(45000, halo::Transport::Mpi);
  EXPECT_GT(mpi45.perf.ns_per_day, 1126.0 * 0.65);
  EXPECT_LT(mpi45.perf.ns_per_day, 1126.0 * 1.35);
  const auto sh360 = run_intranode(360000, halo::Transport::Shmem);
  EXPECT_GT(sh360.perf.ns_per_day, 671.0 * 0.65);
  EXPECT_LT(sh360.perf.ns_per_day, 671.0 * 1.35);
}

TEST(Calibration, ApiOverheadsMatchSection3) {
  // §3: kernel launches 2-10 us, event management < 1 us.
  const auto cm = sim::CostModel::h100_eos();
  EXPECT_GE(cm.kernel_launch_ns, 2000);
  EXPECT_LE(cm.kernel_launch_ns, 10000);
  EXPECT_LT(cm.event_api_ns, 1000);
  // §6.3: local non-bonded 1.7-2.0 ns/atom (nominal, before sharing).
  EXPECT_GE(cm.nb_local_ns_per_atom, 1.5);
  EXPECT_LE(cm.nb_local_ns_per_atom, 2.0);
}

}  // namespace
}  // namespace hs::runner
