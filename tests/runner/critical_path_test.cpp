#include "runner/critical_path.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "runner/timing.hpp"
#include "runner_test_util.hpp"
#include "sim/trace.hpp"

namespace hs::runner {
namespace {

using testing::SkeletonRig;

TEST(CriticalPath, EmptyTraceYieldsEmptyReport) {
  sim::Trace trace;
  const auto rep = compute_critical_path(trace);
  EXPECT_TRUE(rep.steps.empty());
  EXPECT_EQ(rep.window_mean_us(), 0.0);
  EXPECT_TRUE(std::isnan(rep.window_percentile(50.0)));
}

// Hand-built trace: pack [0,100], a signal wait [100,600] released by a
// transfer [0,600] with queue 100 ns / proxy 50 ns, unpack [600,700], and
// a 100 ns launch-gap before a compute kernel. Attribution must partition
// the window [0, 700] exactly.
TEST(CriticalPath, SyntheticAttributionPartitionsWindow) {
  sim::Trace trace;
  trace.set_enabled(true);
  trace.record(0, "comm", "PackX", 0, 100, 0);
  const auto xfer = trace.record(1, "nic", "put ->d0", 0, 600, 0,
                                 sim::SpanKind::Transfer, 100, 50, 0);
  const auto wait = trace.record(0, "sync", "coordSig[0]", 100, 600, 0,
                                 sim::SpanKind::Wait);
  trace.add_edge(xfer, wait, sim::EdgeKind::SignalSetWait);
  trace.record(0, "comm", "UnpackF", 600, 700, 0);

  const auto rep = compute_critical_path(trace);
  ASSERT_EQ(rep.steps.size(), 1u);
  const StepBreakdown& br = rep.steps[0];
  EXPECT_EQ(br.device, 0);
  EXPECT_EQ(br.step, 0);
  EXPECT_DOUBLE_EQ(br.window_us, 0.7);
  // Exact partition: categories sum to the window.
  EXPECT_NEAR(br.attributed_us(), br.window_us, 1e-9);
  const auto us = [&](PathCategory c) {
    return br.us[static_cast<std::size_t>(c)];
  };
  EXPECT_DOUBLE_EQ(us(PathCategory::Pack), 0.1);
  EXPECT_DOUBLE_EQ(us(PathCategory::Unpack), 0.1);
  // The wait [100,600] decomposes into the producer transfer's phases that
  // overlap it: queue ends at 100, proxy covers [100,150], wire the rest.
  EXPECT_DOUBLE_EQ(us(PathCategory::NicQueue), 0.0);
  EXPECT_DOUBLE_EQ(us(PathCategory::Proxy), 0.05);
  EXPECT_DOUBLE_EQ(us(PathCategory::Transfer), 0.45);
  EXPECT_DOUBLE_EQ(us(PathCategory::SignalWait), 0.0);
}

// A gap before a kernel whose queue_ns covers part of it becomes Launch;
// the remainder is Sync when the kernel was event-gated.
TEST(CriticalPath, GapsSplitIntoLaunchAndSync) {
  sim::Trace trace;
  trace.set_enabled(true);
  trace.record(0, "comm", "PackX", 0, 100, 0);
  // 200 ns gap, then an event-gated unpack with 50 ns dispatch overhead.
  const auto producer = trace.record(0, "compute", "nb_local", 0, 80, 0);
  const auto unpack = trace.record(0, "comm", "UnpackF", 300, 400, 0,
                                   sim::SpanKind::Kernel, 50);
  trace.add_edge(producer, unpack, sim::EdgeKind::EventWait);

  const auto rep = compute_critical_path(trace);
  ASSERT_EQ(rep.steps.size(), 1u);
  const StepBreakdown& br = rep.steps[0];
  const auto us = [&](PathCategory c) {
    return br.us[static_cast<std::size_t>(c)];
  };
  EXPECT_NEAR(br.attributed_us(), br.window_us, 1e-9);
  // Window [0,400]: pack 100, compute [0,80] is under pack (priority), gap
  // [100,300] = 150 sync + 50 launch, unpack 100.
  EXPECT_DOUBLE_EQ(us(PathCategory::Launch), 0.05);
  EXPECT_DOUBLE_EQ(us(PathCategory::Sync), 0.15);
  EXPECT_DOUBLE_EQ(us(PathCategory::Pack), 0.1);
  EXPECT_DOUBLE_EQ(us(PathCategory::Unpack), 0.1);
}

// Fig. 7-style small-system run on a 2-node DGX topology: the per-step
// attribution must reconcile with the measured exchange window within 1%,
// and the NVSHMEM path must show real transfer/pack/unpack time.
TEST(CriticalPath, RealRunAttributionReconcilesWithExchangeWindow) {
  RunConfig cfg;  // Shmem transport by default
  auto rig = SkeletonRig::make(90000, 8, sim::Topology::dgx_h100(2, 4), cfg);
  rig.runner->run(12);
  constexpr int kWarmup = 3;
  const auto rep = compute_critical_path(rig.machine->trace(), kWarmup);
  // 8 ranks x 9 measured steps.
  ASSERT_EQ(rep.steps.size(), 72u);
  for (const StepBreakdown& br : rep.steps) {
    EXPECT_GE(br.step, kWarmup);
    ASSERT_GT(br.window_us, 0.0);
    // Acceptance: per-step category sums reconcile with the measured
    // exchange latency within 1%.
    EXPECT_NEAR(br.attributed_us(), br.window_us, 0.01 * br.window_us)
        << "device " << br.device << " step " << br.step;
  }
  const auto us = [&](PathCategory c) { return rep.category_mean_us(c); };
  EXPECT_GT(us(PathCategory::Pack), 0.0);
  EXPECT_GT(us(PathCategory::Unpack), 0.0);
  // Inter-node pulses cross IB: wire time must be attributed.
  EXPECT_GT(us(PathCategory::Transfer), 0.0);
  // The mean window must match aggregate_trace's exchange latency — both
  // use the same first-pack -> last-unpack definition.
  const auto agg = aggregate_trace(rig.machine->trace(), kWarmup);
  EXPECT_EQ(rep.steps.size(), agg.exchange_us.count());
  EXPECT_NEAR(rep.window_mean_us(), agg.exchange_us.mean(),
              1e-6 * agg.exchange_us.mean());
  // Percentile plumbing is live.
  EXPECT_LE(rep.window_percentile(50.0), rep.window_percentile(99.0));
}

// The MPI path has no signal waits; transfers inbound to the device must
// still explain the pack -> unpack gap without breaking the partition.
TEST(CriticalPath, MpiRunStillPartitions) {
  RunConfig cfg;
  cfg.transport = halo::Transport::Mpi;
  auto rig = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  rig.runner->run(8);
  const auto rep = compute_critical_path(rig.machine->trace(), 2);
  ASSERT_FALSE(rep.steps.empty());
  for (const StepBreakdown& br : rep.steps) {
    EXPECT_NEAR(br.attributed_us(), br.window_us, 0.01 * br.window_us);
  }
}

TEST(CriticalPath, WarmupSkipsEarlySteps) {
  RunConfig cfg;
  auto rig = SkeletonRig::make(45000, 4, sim::Topology::dgx_h100(1, 4), cfg);
  rig.runner->run(6);
  const auto all = compute_critical_path(rig.machine->trace(), 0);
  const auto late = compute_critical_path(rig.machine->trace(), 4);
  EXPECT_EQ(all.steps.size(), 24u);
  EXPECT_EQ(late.steps.size(), 8u);
  for (const StepBreakdown& br : late.steps) EXPECT_GE(br.step, 4);
}

}  // namespace
}  // namespace hs::runner
