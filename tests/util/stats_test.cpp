#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hs::util {
namespace {

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
}

TEST(Stats, EmptyPercentileIsNaN) {
  // An empty sample set (e.g. warmup swallowed every measured step) must
  // not report a zero latency.
  EXPECT_TRUE(std::isnan(percentile({}, 50.0)));
  EXPECT_TRUE(std::isnan(percentile({}, 99.0)));
  EXPECT_TRUE(std::isnan(median({})));
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Stats, PercentileClampsOutOfRange) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 150.0), 2.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.mean(), mean(xs));
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(3.5);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.5);
  EXPECT_DOUBLE_EQ(rs.max(), 3.5);
}

}  // namespace
}  // namespace hs::util
