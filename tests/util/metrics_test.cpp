#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/json.hpp"

namespace hs::util::metrics {
namespace {

json::Value round_trip(const Report& r) {
  std::ostringstream os;
  write_json(os, r);
  return json::parse(os.str());
}

TEST(Metrics, WriteJsonRoundTrips) {
  Report r;
  r.set("fig7/mpi", "exchange_mean_us", 118.375);
  r.set("fig7/mpi", "exchange_count", 18);
  r.set("fig7/shmem", "exchange_mean_us", 74.2);
  const json::Value doc = round_trip(r);
  EXPECT_EQ(doc.at("schema").as_string(), kSchema);
  const auto& cases = doc.at("cases").as_object();
  ASSERT_EQ(cases.size(), 2u);
  EXPECT_DOUBLE_EQ(cases.at("fig7/mpi").at("exchange_mean_us").as_number(),
                   118.375);
  EXPECT_DOUBLE_EQ(cases.at("fig7/mpi").at("exchange_count").as_number(), 18.0);
}

TEST(Metrics, NonFiniteValuesAreSkipped) {
  Report r;
  r.set("c", "good_us", 1.5);
  r.set("c", "nan_us", std::numeric_limits<double>::quiet_NaN());
  r.set("c", "inf_us", std::numeric_limits<double>::infinity());
  const json::Value doc = round_trip(r);  // parse throws on bare NaN tokens
  const auto& c = doc.at("cases").at("c");
  EXPECT_TRUE(c.contains("good_us"));
  EXPECT_FALSE(c.contains("nan_us"));
  EXPECT_FALSE(c.contains("inf_us"));
}

TEST(Metrics, TimeMetricSuffixes) {
  EXPECT_TRUE(is_time_metric("exchange_mean_us"));
  EXPECT_TRUE(is_time_metric("nic_queue_ns"));
  EXPECT_FALSE(is_time_metric("exchange_count"));
  EXPECT_FALSE(is_time_metric("fabric_total_bytes"));
}

TEST(Metrics, DiffFlagsOnlyTimeRegressions) {
  const auto base = json::parse(R"({"schema":"halosim-bench-metrics-v1",
    "cases":{"a":{"t_us":100.0,"bytes":1000.0}}})");
  const auto worse = json::parse(R"({"schema":"halosim-bench-metrics-v1",
    "cases":{"a":{"t_us":120.0,"bytes":2000.0}}})");
  const auto result = diff(base, worse, 0.10);
  EXPECT_TRUE(result.regression);
  ASSERT_EQ(result.deltas.size(), 2u);
  for (const Delta& d : result.deltas) {
    // Only the time metric is a gate failure; byte-count drift is reported
    // but not gated.
    EXPECT_EQ(d.regression, d.key == "t_us");
  }
}

TEST(Metrics, DiffIgnoresImprovementsAndSmallDrift) {
  const auto base = json::parse(R"({"schema":"halosim-bench-metrics-v1",
    "cases":{"a":{"t_us":100.0}}})");
  const auto better = json::parse(R"({"schema":"halosim-bench-metrics-v1",
    "cases":{"a":{"t_us":80.0}}})");
  const auto small = json::parse(R"({"schema":"halosim-bench-metrics-v1",
    "cases":{"a":{"t_us":105.0}}})");
  EXPECT_FALSE(diff(base, better, 0.10).regression);
  const auto r = diff(base, small, 0.10);
  EXPECT_FALSE(r.regression);
  EXPECT_TRUE(r.deltas.empty());  // within threshold: not even reported
}

TEST(Metrics, MissingCaseIsARegressionButKeyDriftIsANote) {
  const auto base = json::parse(R"({"schema":"halosim-bench-metrics-v1",
    "cases":{"a":{"t_us":100.0},"b":{"t_us":50.0}}})");
  const auto no_case = json::parse(R"({"schema":"halosim-bench-metrics-v1",
    "cases":{"a":{"t_us":100.0}}})");
  const auto drift = json::parse(R"({"schema":"halosim-bench-metrics-v1",
    "cases":{"a":{"other":1.0},"b":{"t_us":50.0}}})");
  // The candidate losing a whole case still fails the gate.
  EXPECT_TRUE(diff(base, no_case, 0.10).regression);
  EXPECT_FALSE(diff(base, no_case, 0.10).notes.empty());
  // A key present in only one document is schema drift: reported as
  // added/removed notes, never gated on — a rename is not a perf
  // regression.
  const auto r = diff(base, drift, 0.10);
  EXPECT_FALSE(r.regression);
  ASSERT_EQ(r.notes.size(), 2u);
  EXPECT_NE(r.notes[0].find("'a.other' added"), std::string::npos);
  EXPECT_NE(r.notes[1].find("'a.t_us' removed"), std::string::npos);
}

TEST(Metrics, TelemetrySectionEmbedsWithoutAffectingDiff) {
  Report r;
  r.set("a", "t_us", 100.0);
  r.telemetry_json =
      R"({"schema":"halosim-telemetry-v1","runs":{"a":{"window_ns":100000,"metrics":[]}}})";
  const json::Value doc = round_trip(r);
  ASSERT_TRUE(doc.contains("telemetry"));
  EXPECT_EQ(doc.at("telemetry").at("schema").as_string(),
            "halosim-telemetry-v1");
  // diff reads only "cases": identical cases compare clean even though
  // only one side carries telemetry.
  Report bare;
  bare.set("a", "t_us", 100.0);
  const auto result = diff(round_trip(bare), doc, 0.10);
  EXPECT_FALSE(result.regression);
  EXPECT_TRUE(result.deltas.empty());
  EXPECT_TRUE(result.notes.empty());
}

TEST(Metrics, DiffRejectsEmptyBaselineCases) {
  // A baseline with an empty "cases" object vouches for nothing: every
  // candidate would "pass". That is a broken baseline, not a clean diff.
  const auto empty = json::parse(R"({"schema":"halosim-bench-metrics-v1",
    "cases":{}})");
  const auto good = json::parse(R"({"schema":"halosim-bench-metrics-v1",
    "cases":{"a":{"t_us":100.0}}})");
  EXPECT_THROW(diff(empty, good, 0.1), std::runtime_error);
  // An empty *candidate* against a real baseline is a lost case — a
  // regression, not an error.
  EXPECT_TRUE(diff(good, empty, 0.1).regression);
}

TEST(Metrics, DiffRejectsWrongSchema) {
  const auto good = json::parse(R"({"schema":"halosim-bench-metrics-v1",
    "cases":{}})");
  const auto bad = json::parse(R"({"schema":"something-else","cases":{}})");
  EXPECT_THROW(diff(bad, good, 0.1), std::runtime_error);
  EXPECT_THROW(diff(good, bad, 0.1), std::runtime_error);
}

TEST(Metrics, CaseForMergesByLabel) {
  Report r;
  r.set("a", "x", 1.0);
  r.set("a", "y", 2.0);
  r.set("b", "x", 3.0);
  ASSERT_EQ(r.cases.size(), 2u);
  EXPECT_EQ(r.cases[0].values.size(), 2u);
}

}  // namespace
}  // namespace hs::util::metrics
