#include "util/telemetry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "util/json.hpp"

namespace hs::util::telemetry {
namespace {

// ---- Histogram bucketing ------------------------------------------------

TEST(TelemetryHistogram, BucketBoundariesAreExact) {
  // Bucket 0: v < 1. Bucket b >= 1: [2^(b-1), 2^b) — powers of two open a
  // new bucket, one-less-than stays in the previous one.
  EXPECT_EQ(Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(0.999), 0);
  EXPECT_EQ(Histogram::bucket_of(1.0), 1);
  EXPECT_EQ(Histogram::bucket_of(2.0), 2);
  EXPECT_EQ(Histogram::bucket_of(3.0), 2);
  EXPECT_EQ(Histogram::bucket_of(4.0), 3);
  EXPECT_EQ(Histogram::bucket_of(1023.0), 10);
  EXPECT_EQ(Histogram::bucket_of(1024.0), 11);
  EXPECT_EQ(Histogram::bucket_of(1.0e18), 60);
  // NaN and negatives land in bucket 0 by convention; huge values clamp to
  // the top bucket instead of overflowing the uint64 cast.
  EXPECT_EQ(Histogram::bucket_of(-5.0), 0);
  EXPECT_EQ(Histogram::bucket_of(std::nan("")), 0);
  EXPECT_EQ(Histogram::bucket_of(1.0e19), Histogram::kBuckets - 1);
}

TEST(TelemetryHistogram, FloorInvertsBucketOf) {
  for (int b = 0; b < Histogram::kBuckets - 1; ++b) {
    const double floor = Histogram::bucket_floor(b);
    if (b > 0) EXPECT_EQ(Histogram::bucket_of(floor), b) << "bucket " << b;
  }
}

TEST(TelemetryHistogram, MergeAddsCounts) {
  Histogram a;
  Histogram b;
  a.record(1.0);
  a.record(100.0);
  b.record(100.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.buckets[static_cast<std::size_t>(Histogram::bucket_of(100.0))],
            2u);
}

// ---- Series -------------------------------------------------------------

TEST(TelemetrySeries, EmptySeriesExports) {
  Registry reg;
  reg.enable();
  reg.histogram("empty", "ns");
  std::ostringstream os;
  reg.write_json(os);
  const auto doc = json::parse(os.str());
  const auto& m = doc.at("metrics").at(0);
  EXPECT_EQ(m.at("count").as_number(), 0.0);
  EXPECT_FALSE(m.contains("min"));  // undefined without samples
  EXPECT_EQ(m.at("series").at("buckets").size(), 0u);
}

TEST(TelemetrySeries, SingleSampleCarriesMinMax) {
  Registry reg;
  reg.enable();
  const MetricId id = reg.histogram("one", "ns");
  reg.observe(id, 250'000, 42.0);
  const Metric* m = reg.find("one");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 1u);
  EXPECT_EQ(m->min, 42.0);
  EXPECT_EQ(m->max, 42.0);
  ASSERT_EQ(m->series.buckets().size(), 1u);
  EXPECT_EQ(m->series.buckets()[0].index, 2);  // 250us / 100us window
}

TEST(TelemetrySeries, CapacityEvictsOldestAndCountsDropped) {
  Registry reg;
  reg.enable(/*window_ns=*/100, /*series_capacity=*/4);
  const MetricId id = reg.counter("c");
  for (std::int64_t t = 0; t < 10; ++t) reg.add(id, t * 100, 1.0);
  const Metric* m = reg.find("c");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->series.buckets().size(), 4u);
  EXPECT_EQ(m->series.dropped(), 6u);
  EXPECT_EQ(m->series.buckets().front().index, 6);
  EXPECT_EQ(m->series.buckets().back().index, 9);
  EXPECT_EQ(m->sum, 10.0);  // totals survive series eviction
}

TEST(TelemetrySeries, OutOfOrderWithinRetainedRangeCombines) {
  Registry reg;
  reg.enable(/*window_ns=*/100, /*series_capacity=*/8);
  const MetricId id = reg.counter("c");
  reg.add(id, 500, 1.0);
  reg.add(id, 100, 1.0);  // earlier window, still retained: binary insert
  reg.add(id, 500, 1.0);
  const Metric* m = reg.find("c");
  ASSERT_EQ(m->series.buckets().size(), 2u);
  EXPECT_EQ(m->series.buckets()[0].index, 1);
  EXPECT_EQ(m->series.buckets()[1].index, 5);
  EXPECT_EQ(m->series.buckets()[1].count, 2u);
}

// ---- Registry and merge -------------------------------------------------

TEST(TelemetryRegistry, DisabledRegistrationYieldsInvalidIdsAndNoSamples) {
  Registry reg;  // never enabled
  const MetricId id = reg.counter("c");
  EXPECT_FALSE(id.valid());
  reg.add(id, 0, 1.0);  // must be a no-op, not a crash
  EXPECT_EQ(reg.size(), 0u);
}

TEST(TelemetryRegistry, ReregisteringANameReturnsTheSameId) {
  Registry reg;
  reg.enable();
  const MetricId a = reg.counter("c", "ops");
  const MetricId b = reg.counter("c", "ops");
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(TelemetryRegistry, MergeIsAssociativeAndOrderIndependentInExport) {
  // Three lane rows with overlapping metric names, merged in the two
  // possible association orders: the exported documents must be byte
  // identical — this is the invariant the workers=1 vs workers=N telemetry
  // parity rests on.
  const auto make_lane = [](int lane) {
    Registry reg;
    reg.enable();
    const MetricId c = reg.counter("shared.calls", "ops");
    const MetricId h = reg.histogram("lane" + std::to_string(lane) + ".t",
                                     "ns", lane);
    reg.add(c, lane * 100'000, 1.0 + lane);
    reg.observe(h, lane * 100'000, 10.0 * (lane + 1));
    return reg;
  };

  Registry left;
  left.enable();
  {
    Registry ab = make_lane(0);
    ab.merge(make_lane(1));
    left.merge(ab);
    left.merge(make_lane(2));
  }
  Registry right;
  right.enable();
  {
    Registry bc = make_lane(1);
    bc.merge(make_lane(2));
    right.merge(make_lane(0));
    right.merge(bc);
  }

  std::ostringstream left_os;
  std::ostringstream right_os;
  left.write_json(left_os);
  right.write_json(right_os);
  EXPECT_EQ(left_os.str(), right_os.str());

  const Metric* shared = left.find("shared.calls");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->sum, 1.0 + 2.0 + 3.0);
  EXPECT_EQ(shared->series.buckets().size(), 3u);
}

TEST(TelemetryRegistry, ResetValuesKeepsDefinitions) {
  Registry reg;
  reg.enable();
  const MetricId id = reg.counter("c");
  reg.add(id, 0, 5.0);
  reg.reset_values();
  const Metric* m = reg.find("c");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 0u);
  EXPECT_EQ(m->sum, 0.0);
  EXPECT_TRUE(m->series.buckets().empty());
  reg.add(id, 0, 2.0);  // id still live after reset
  EXPECT_EQ(reg.find("c")->sum, 2.0);
}

// ---- Export -------------------------------------------------------------

TEST(TelemetryExport, JsonSortsByNameAndSkipsHostByDefault) {
  Registry reg;
  reg.enable();
  const MetricId z = reg.counter("z.last");
  const MetricId a = reg.counter("a.first");
  const MetricId host =
      reg.counter("h.wall", "ns", -1, Domain::Host);
  reg.add(z, 0, 1.0);
  reg.add(a, 0, 1.0);
  reg.add(host, 0, 1.0);

  std::ostringstream os;
  reg.write_json(os);
  const auto doc = json::parse(os.str());
  const auto& metrics = doc.at("metrics").as_array();
  ASSERT_EQ(metrics.size(), 2u);  // Host excluded
  EXPECT_EQ(metrics[0].at("name").as_string(), "a.first");
  EXPECT_EQ(metrics[1].at("name").as_string(), "z.last");

  std::ostringstream with_host;
  reg.write_json(with_host, /*include_host=*/true);
  EXPECT_EQ(json::parse(with_host.str()).at("metrics").size(), 3u);
}

TEST(TelemetryExport, GaugeTotalIsLastValue) {
  Registry reg;
  reg.enable();
  const MetricId g = reg.gauge("g");
  reg.set(g, 0, 10.0);
  reg.set(g, 100'000, 30.0);
  std::ostringstream os;
  reg.write_json(os);
  const auto doc = json::parse(os.str());
  EXPECT_EQ(doc.at("metrics").at(0).at("total").as_number(), 30.0);
}

TEST(TelemetryExport, CsvEmitsOneRowPerBucket) {
  Registry reg;
  reg.enable();
  const MetricId c = reg.counter("c", "ops", 3);
  reg.add(c, 0, 1.0);
  reg.add(c, 150'000, 2.0);
  std::ostringstream os;
  reg.write_csv(os, "run1");
  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line,
            "run,metric,kind,unit,device,bucket_start_ns,count,sum,min,max");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("run1,c,counter,ops,3,0,", 0), 0u);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("run1,c,counter,ops,3,100000,", 0), 0u);
  EXPECT_FALSE(std::getline(lines, line));
}

}  // namespace
}  // namespace hs::util::telemetry
