#include "util/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace hs::util::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedContainers) {
  const Value v = parse(R"({"a":[1,2,{"b":true}],"c":{"d":null}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.size(), 2u);
  const Value& a = v.at("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.at(1).as_number(), 2.0);
  EXPECT_TRUE(a.at(2).at("b").as_bool());
  EXPECT_TRUE(v.at("c").at("d").is_null());
  EXPECT_TRUE(v.contains("c"));
  EXPECT_FALSE(v.contains("z"));
}

TEST(Json, DecodesStringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  // \u escape, BMP code point (é = U+00E9 -> UTF-8 0xC3 0xA9).
  EXPECT_EQ(parse(R"("café")").as_string(), "caf\xc3\xa9");
}

TEST(Json, HandlesWhitespaceEverywhere) {
  const Value v = parse("  { \"k\" :\n[ 1 ,\t2 ] }  ");
  EXPECT_EQ(v.at("k").size(), 2u);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{"), std::runtime_error);
  EXPECT_THROW(parse("[1,]"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse("01"), std::runtime_error);
  EXPECT_THROW(parse("nul"), std::runtime_error);
  EXPECT_THROW(parse("1 2"), std::runtime_error);  // trailing garbage
}

TEST(Json, ErrorMessageCarriesByteOffset) {
  try {
    parse("[1, oops]");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("4"), std::string::npos);
  }
}

TEST(Json, WrongTypeAccessThrows) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), std::runtime_error);
  EXPECT_THROW(v.at("key"), std::runtime_error);
  EXPECT_THROW(v.at(0).as_string(), std::runtime_error);
}

}  // namespace
}  // namespace hs::util::json
