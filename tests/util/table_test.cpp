#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hs::util {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"size", "ns/day"});
  t.add_row({"45k", "1649.00"});
  t.add_row({"180k", "1103.00"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("size"), std::string::npos);
  EXPECT_NE(out.find("45k"), std::string::npos);
  EXPECT_NE(out.find("1103.00"), std::string::npos);
  // Header separator line exists.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.0, 0), "3");
  EXPECT_EQ(Table::fmt(static_cast<long long>(42)), "42");
}

TEST(Table, RowsCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace hs::util
