#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace hs::util {
namespace {

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--steps=100", "--size=45k"};
  Cli cli(3, argv);
  EXPECT_EQ(cli.get_int("steps", 0), 100);
  EXPECT_EQ(cli.get("size", ""), "45k");
}

TEST(Cli, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--steps", "200"};
  Cli cli(3, argv);
  EXPECT_EQ(cli.get_int("steps", 0), 200);
}

TEST(Cli, BooleanSwitch) {
  const char* argv[] = {"prog", "--verbose"};
  Cli cli(2, argv);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.get_bool("quiet", false));
}

TEST(Cli, Fallbacks) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(cli.get("missing", "d"), "d");
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, Positional) {
  const char* argv[] = {"prog", "input.dat", "--flag=1", "output.dat"};
  Cli cli(4, argv);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.dat");
  EXPECT_EQ(cli.positional()[1], "output.dat");
}

TEST(Cli, UnusedFlagsReported) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  Cli cli(3, argv);
  (void)cli.get_int("used", 0);
  const auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, DoubleParsing) {
  const char* argv[] = {"prog", "--x=2.75"};
  Cli cli(2, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 2.75);
}

}  // namespace
}  // namespace hs::util
