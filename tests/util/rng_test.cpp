#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace hs::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.5, 2.25);
    EXPECT_GE(x, -3.5);
    EXPECT_LT(x, 2.25);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(13);
  std::array<int, 7> hist{};
  for (int i = 0; i < 70000; ++i) {
    const auto v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    ++hist[v];
  }
  // Roughly uniform: every bucket within 10% of the expectation.
  for (int count : hist) EXPECT_NEAR(count, 10000, 1000);
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, SplitmixIsStable) {
  // Pin the seeding function so streams never silently change: downstream
  // experiments depend on bit-stable workloads.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace hs::util
