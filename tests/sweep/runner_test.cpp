#include "sweep/runner.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>

#include "sweep/output.hpp"

namespace hs::sweep {
namespace {

namespace fs = std::filesystem;

// Small and fast: three cases, a handful of steps each.
constexpr const char* kSpec = R"({
  "schema": "halosim-campaign-spec-v1",
  "name": "runner_test",
  "grid": {
    "atoms": 45000,
    "transport": ["mpi", "tmpi", "shmem"],
    "steps": 5,
    "warmup": 1
  }
})";

std::string render(const CampaignResult& result) {
  std::ostringstream os;
  write_campaign_json(os, result);
  return os.str();
}

class SweepRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("hs_sweep_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir() const { return dir_.string(); }

 private:
  fs::path dir_;
};

TEST(SweepRunner, SimulateCaseDocumentIsDeterministicAndValid) {
  const Campaign campaign = parse_campaign_text(kSpec);
  const std::string once = simulate_case_document(campaign.cases[0]);
  const std::string twice = simulate_case_document(campaign.cases[0]);
  EXPECT_EQ(once, twice);
  EXPECT_TRUE(validate_case_document(once));
  // The document is keyed by the config hash and embeds the config.
  EXPECT_NE(once.find(case_hash_hex(campaign.cases[0])), std::string::npos);
  EXPECT_NE(once.find("\"config\":{"), std::string::npos);
}

TEST_F(SweepRunnerTest, SecondRunIsAllHitsAndByteIdentical) {
  const Campaign campaign = parse_campaign_text(kSpec);
  SweepOptions options;
  options.cache_dir = dir();
  options.quiet = true;

  const CampaignResult first = run_campaign(campaign, options);
  EXPECT_EQ(first.hits, 0);
  EXPECT_EQ(first.misses, 3);

  const CampaignResult second = run_campaign(campaign, options);
  EXPECT_EQ(second.hits, 3);
  EXPECT_EQ(second.misses, 0);

  // The acceptance bar: simulated and cache-served runs render the same
  // bytes (JSON and CSV both).
  EXPECT_EQ(render(first), render(second));
  std::ostringstream csv1;
  std::ostringstream csv2;
  write_campaign_csv(csv1, first);
  write_campaign_csv(csv2, second);
  EXPECT_EQ(csv1.str(), csv2.str());
}

TEST_F(SweepRunnerTest, ShardCountsProduceIdenticalMergedDocuments) {
  const Campaign campaign = parse_campaign_text(kSpec);

  // Fill one cache with a single shard, another with four. Shards claim
  // misses against the cache state they start from, so to model the
  // forked workers (which all start from the same snapshot) each shard
  // writes its own directory and the entries are merged afterwards.
  const std::string dir1 = dir() + "_s1";
  const std::string dir4 = dir() + "_s4";
  const ResultCache cache1(dir1);
  EXPECT_EQ(run_shard(campaign, cache1, 0, 1, /*quiet=*/true), 3);
  int simulated = 0;
  fs::create_directories(dir4);
  for (int s = 0; s < 4; ++s) {
    const std::string shard_dir = dir4 + "_worker" + std::to_string(s);
    simulated += run_shard(campaign, ResultCache(shard_dir), s, 4,
                           /*quiet=*/true);
    if (fs::exists(shard_dir)) {  // a shard with no claims stores nothing
      for (const auto& entry : fs::directory_iterator(shard_dir)) {
        fs::rename(entry.path(), fs::path(dir4) / entry.path().filename());
      }
      fs::remove_all(shard_dir);
    }
  }
  EXPECT_EQ(simulated, 3);  // every miss claimed exactly once

  SweepOptions options;
  options.quiet = true;
  options.cache_dir = dir1;
  const std::string doc1 = render(run_campaign(campaign, options));
  options.cache_dir = dir4;
  const std::string doc4 = render(run_campaign(campaign, options));
  EXPECT_EQ(doc1, doc4);

  fs::remove_all(dir1);
  fs::remove_all(dir4);
}

TEST_F(SweepRunnerTest, ShardSkipsCasesAlreadyInTheCache) {
  const Campaign campaign = parse_campaign_text(kSpec);
  const ResultCache cache(dir());
  // Pre-fill one case; a full single-shard pass must only simulate the
  // other two.
  cache.store(case_hash_hex(campaign.cases[1]),
              simulate_case_document(campaign.cases[1]));
  EXPECT_EQ(run_shard(campaign, cache, 0, 1, /*quiet=*/true), 2);
  EXPECT_EQ(run_shard(campaign, cache, 0, 1, /*quiet=*/true), 0);
}

TEST_F(SweepRunnerTest, RunShardRejectsBadAssignments) {
  const Campaign campaign = parse_campaign_text(kSpec);
  const ResultCache cache(dir());
  EXPECT_THROW(run_shard(campaign, cache, 2, 2, true), std::runtime_error);
  EXPECT_THROW(run_shard(campaign, cache, -1, 2, true), std::runtime_error);
  EXPECT_THROW(run_shard(campaign, cache, 0, 0, true), std::runtime_error);
}

TEST_F(SweepRunnerTest, PoolExecutorModesAreByteIdentical) {
  // The tentpole invariant, unit-test half: serial, pooled, warm and cold
  // prepared state all render the same campaign bytes. (The fork side of
  // the matrix needs the real binary and lives in scripts/sweep_smoke.sh.)
  const Campaign campaign = parse_campaign_text(kSpec);
  SweepOptions options;
  options.quiet = true;

  options.cache_dir = dir() + "_serial";
  const std::string serial = render(run_campaign(campaign, options));

  options.cache_dir = dir() + "_pool";
  options.shards = 4;
  const CampaignResult pooled = run_campaign(campaign, options);
  EXPECT_EQ(pooled.misses, 3);
  EXPECT_EQ(pooled.failed_shards, 0);
  EXPECT_EQ(render(pooled), serial);

  options.cache_dir = dir() + "_noprep";
  options.prepared_state = false;
  const std::string cold = render(run_campaign(campaign, options));
  EXPECT_EQ(cold, serial);

  for (const char* suffix : {"_serial", "_pool", "_noprep"}) {
    fs::remove_all(dir() + suffix);
  }
}

TEST_F(SweepRunnerTest, PoolRerunServesHitsByteIdentically) {
  const Campaign campaign = parse_campaign_text(kSpec);
  SweepOptions options;
  options.quiet = true;
  options.cache_dir = dir();
  options.shards = 4;
  const CampaignResult first = run_campaign(campaign, options);
  EXPECT_EQ(first.misses, 3);
  const CampaignResult second = run_campaign(campaign, options);
  EXPECT_EQ(second.hits, 3);
  EXPECT_EQ(render(first), render(second));
}

TEST_F(SweepRunnerTest, CacheMaxEntriesTrimsAndRereadsAsMisses) {
  const Campaign campaign = parse_campaign_text(kSpec);
  SweepOptions options;
  options.quiet = true;
  options.cache_dir = dir();
  options.shards = 1;  // deterministic store order => deterministic mtimes
  options.cache_max_entries = 2;
  const CampaignResult first = run_campaign(campaign, options);
  EXPECT_EQ(first.misses, 3);
  int entries = 0;
  for (const auto& de : fs::directory_iterator(dir())) {
    (void)de;
    ++entries;
  }
  EXPECT_EQ(entries, 2);
  // Rerun: at least one evicted case re-simulates, but the rendered
  // document is still byte-identical.
  const CampaignResult second = run_campaign(campaign, options);
  EXPECT_GE(second.misses, 1);
  EXPECT_EQ(render(first), render(second));
}

TEST(DescribeWaitStatus, DecodesExitsAndSignals) {
  // std::system returns waitpid()-style statuses on POSIX — exactly what
  // fork_shards hands to describe_wait_status.
  EXPECT_EQ(describe_wait_status(std::system("exit 0")), "");
  EXPECT_EQ(describe_wait_status(std::system("exit 7")), "exit code 7");
  EXPECT_EQ(describe_wait_status(std::system("exit 127")), "exit code 127");
  const std::string sig = describe_wait_status(std::system("kill -9 $$"));
  EXPECT_NE(sig.find("killed by signal 9"), std::string::npos) << sig;
}

TEST_F(SweepRunnerTest, CampaignJsonHasCurvesAndCriticalPath) {
  const Campaign campaign = parse_campaign_text(kSpec);
  SweepOptions options;
  options.cache_dir = dir();
  options.quiet = true;
  const std::string doc = render(run_campaign(campaign, options));
  EXPECT_NE(doc.find("\"schema\":\"halosim-campaign-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"curves\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"critical_path\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"efficiency\":"), std::string::npos);
  EXPECT_NE(doc.find("\"transfer_us\":"), std::string::npos);
  // Hit/miss status and wall times must never leak into the document.
  EXPECT_EQ(doc.find("hit"), std::string::npos);
  EXPECT_EQ(doc.find("wall"), std::string::npos);
}

}  // namespace
}  // namespace hs::sweep
