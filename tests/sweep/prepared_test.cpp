// Prepared-state cache semantics: sharing keyed by the setup sub-hash,
// immutability of the shared object, and the hard invariant that warm
// state never changes a byte of output. The concurrent tests here are
// part of the TSan smoke sweep (scripts/threads_smoke.sh) — they exercise
// many cases sharing ONE PreparedCase from different threads.
#include "sweep/prepared.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "sweep/runner.hpp"

namespace hs::sweep {
namespace {

constexpr const char* kHeader = R"("schema":"halosim-campaign-spec-v1")";

CaseConfig single_case(const std::string& grid_body) {
  const Campaign c = parse_campaign_text(
      std::string("{") + kHeader + R"(,"grid":)" + grid_body + "}");
  EXPECT_EQ(c.cases.size(), 1u);
  return c.cases.front();
}

TEST(PreparedState, SameSetupSharesOneObject) {
  PreparedStateCache cache;
  // Transport / fabric / design switches are not setup axes: every one of
  // these must come back as the same PreparedCase object.
  const auto a = cache.get(
      single_case(R"({"atoms":45000,"transport":"shmem","steps":5})"));
  const auto b = cache.get(
      single_case(R"({"atoms":45000,"transport":"mpi","steps":50})"));
  const auto c = cache.get(single_case(
      R"({"atoms":45000,"transport":"tmpi","ib_latency_ns":2000})"));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a.get(), c.get());
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(PreparedState, DistinctSetupsGetDistinctObjects) {
  PreparedStateCache cache;
  const auto base = cache.get(single_case(R"({"atoms":45000})"));
  const auto atoms = cache.get(single_case(R"({"atoms":90000})"));
  const auto dd = cache.get(single_case(R"({"atoms":45000,"dd":[2,2,1]})"));
  const auto nodes = cache.get(single_case(R"({"atoms":45000,"nodes":2})"));
  EXPECT_NE(base.get(), atoms.get());
  EXPECT_NE(base.get(), dd.get());
  EXPECT_NE(base.get(), nodes.get());
  EXPECT_EQ(cache.entries(), 4u);
  // The prepared slice reflects its own setup, not the first caller's.
  EXPECT_EQ(atoms->atoms, 90000);
  EXPECT_EQ(dd->dims.nx, 2);
  EXPECT_EQ(dd->dims.ny, 2);
  EXPECT_EQ(dd->dims.nz, 1);
}

TEST(PreparedState, WarmStateDoesNotChangeTheDocument) {
  const CaseConfig config =
      single_case(R"({"atoms":45000,"transport":"shmem","steps":5})");
  const std::string cold = simulate_case_document(config);

  PreparedStateCache prepared;
  runner::CaseScratch scratch;
  ExecutionContext ctx;
  ctx.prepared = &prepared;
  ctx.scratch = &scratch;
  // Twice warm: the second run reuses both the prepared state and the
  // recycled arenas — still the same bytes.
  EXPECT_EQ(simulate_case_document(config, ctx), cold);
  EXPECT_EQ(simulate_case_document(config, ctx), cold);
  EXPECT_EQ(prepared.hits(), 1u);

  // Each half of the context on its own as well.
  ExecutionContext only_prepared;
  only_prepared.prepared = &prepared;
  EXPECT_EQ(simulate_case_document(config, only_prepared), cold);
  ExecutionContext only_scratch;
  only_scratch.scratch = &scratch;
  EXPECT_EQ(simulate_case_document(config, only_scratch), cold);
}

TEST(PreparedState, ConcurrentCasesShareOnePreparedStateSafely) {
  // Many threads, one setup: every worker executes against the SAME
  // shared PreparedCase concurrently (per-thread scratch, as in the pool
  // executor). TSan verifies the shared object is truly read-only; we
  // verify every thread still produced the cold-run bytes.
  const std::vector<std::string> grids = {
      R"({"atoms":45000,"transport":"shmem","steps":5})",
      R"({"atoms":45000,"transport":"mpi","steps":5})",
      R"({"atoms":45000,"transport":"tmpi","steps":5})",
      R"({"atoms":45000,"transport":"shmem","steps":5,"fuse_pulses":false})",
  };
  std::vector<std::string> cold(grids.size());
  for (std::size_t i = 0; i < grids.size(); ++i) {
    cold[i] = simulate_case_document(single_case(grids[i]));
  }

  PreparedStateCache prepared;
  std::vector<std::string> warm(grids.size());
  std::vector<std::thread> threads;
  threads.reserve(grids.size());
  for (std::size_t i = 0; i < grids.size(); ++i) {
    threads.emplace_back([&, i]() {
      runner::CaseScratch scratch;
      ExecutionContext ctx;
      ctx.prepared = &prepared;
      ctx.scratch = &scratch;
      warm[i] = simulate_case_document(single_case(grids[i]), ctx);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(prepared.entries(), 1u);  // one setup, truly shared
  for (std::size_t i = 0; i < grids.size(); ++i) {
    EXPECT_EQ(warm[i], cold[i]) << "thread " << i << " diverged";
  }
}

}  // namespace
}  // namespace hs::sweep
