// Stability of the cache key. The content-addressed store (and every
// cached result on every developer machine) is only valid while
// canonical_json/case_hash are stable, so this suite pins them three
// ways: invariance under spec formatting, sensitivity to every single
// config field, and a checked-in golden hash file. If a change here is
// intentional, regenerate tests/fixtures/sweep_golden_hashes.txt and
// call out in the commit message that all existing caches are
// invalidated.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sweep/campaign.hpp"

namespace hs::sweep {
namespace {

constexpr const char* kHeader = R"("schema":"halosim-campaign-spec-v1")";

CaseConfig single_case(const std::string& grid_body) {
  const Campaign c = parse_campaign_text(
      std::string("{") + kHeader + R"(,"grid":)" + grid_body + "}");
  EXPECT_EQ(c.cases.size(), 1u);
  return c.cases.front();
}

TEST(CaseHash, InvariantUnderKeyOrderAndWhitespace) {
  const CaseConfig a = single_case(R"({"atoms":90000,"transport":"mpi"})");
  const CaseConfig b = single_case(
      "{\n  \"transport\" : \"mpi\",\n\n  \"atoms\" :\t90000\n}");
  EXPECT_EQ(canonical_json(a), canonical_json(b));
  EXPECT_EQ(case_hash_hex(a), case_hash_hex(b));
}

TEST(CaseHash, CanonicalJsonHasSortedKeysAndNoWhitespace) {
  const std::string text = canonical_json(CaseConfig{});
  EXPECT_EQ(text.find(' '), std::string::npos);
  EXPECT_EQ(text.find('\n'), std::string::npos);
  // Keys must come out byte-sorted; spot-check a known ordering.
  EXPECT_LT(text.find("\"atoms\""), text.find("\"cost_model\""));
  EXPECT_LT(text.find("\"cost_model\""), text.find("\"workers\""));
}

TEST(CaseHash, EverySemanticFieldChangesTheHash) {
  // One non-default value per axis. Any axis missing here, or any axis
  // whose mutation does NOT move the hash, is a cache-poisoning bug
  // (two different configs sharing one cache entry).
  const std::map<std::string, std::string> mutations = {
      {"atoms", R"({"atoms":46000})"},
      {"cost_model", R"({"cost_model":"gb200_nvl72"})"},
      {"cpu_pe_barrier", R"({"cpu_pe_barrier":true})"},
      {"dd", R"({"dd":[2,2,1]})"},
      {"dependency_partitioning", R"({"dependency_partitioning":false})"},
      {"dt_fs", R"({"dt_fs":1.0})"},
      {"fuse_pulses", R"({"fuse_pulses":false})"},
      {"fused_signaling", R"({"fused_signaling":false})"},
      {"gpus_per_node", R"({"gpus_per_node":8})"},
      {"ib_bytes_per_ns", R"({"ib_bytes_per_ns":10.0})"},
      {"ib_latency_ns", R"({"ib_latency_ns":2000})"},
      {"ib_per_message_ns", R"({"ib_per_message_ns":50})"},
      {"machine", R"({"machine":"gb200_nvl72"})"},
      {"nodes", R"({"nodes":2})"},
      {"nvlink_bytes_per_ns", R"({"nvlink_bytes_per_ns":100.0})"},
      {"nvlink_latency_ns", R"({"nvlink_latency_ns":400})"},
      {"nvlink_per_message_ns", R"({"nvlink_per_message_ns":20})"},
      {"proxy_placement", R"({"proxy_placement":"reserved_core"})"},
      {"prune_interval", R"({"prune_interval":8})"},
      {"prune_low_priority_stream", R"({"prune_low_priority_stream":false})"},
      {"steps", R"({"steps":20})"},
      {"third_stream_for_update", R"({"third_stream_for_update":false})"},
      {"transport", R"({"transport":"mpi"})"},
      {"use_cuda_graph", R"({"use_cuda_graph":true})"},
      {"use_tma", R"({"use_tma":false})"},
      {"warmup", R"({"warmup":5})"},
      {"workers", R"({"workers":2})"},
  };
  const std::string base_hash = case_hash_hex(single_case("{}"));
  std::map<std::string, std::string> seen;  // hash -> axis
  seen[base_hash] = "<default>";
  for (const auto& [axis, grid] : mutations) {
    const std::string hash = case_hash_hex(single_case(grid));
    EXPECT_NE(hash, base_hash) << "axis '" << axis << "' did not move the hash";
    const auto [it, inserted] = seen.emplace(hash, axis);
    EXPECT_TRUE(inserted) << "axes '" << axis << "' and '" << it->second
                          << "' collide on hash " << hash;
  }
}

TEST(CaseHash, MatchesCheckedInGoldenHashes) {
  // name -> single-grid spec; hashes pinned in the fixture file.
  const std::map<std::string, std::string> specs = {
      {"default", "{}"},
      {"mpi_90k", R"({"atoms":90000,"transport":"mpi"})"},
      {"nvl72_2n4g", R"({"machine":"gb200_nvl72","nodes":2,"atoms":720000})"},
      {"dd_forced", R"({"dd":[2,2,1]})"},
      {"fabric_override",
       R"({"ib_latency_ns":2500,"nvlink_bytes_per_ns":150.5})"},
  };
  std::ifstream in(HS_FIXTURE_DIR "/sweep_golden_hashes.txt");
  ASSERT_TRUE(in) << "missing fixture sweep_golden_hashes.txt";
  std::map<std::string, std::string> golden;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string name;
    std::string hash;
    ASSERT_TRUE(fields >> name >> hash) << "bad golden line: " << line;
    golden[name] = hash;
  }
  ASSERT_EQ(golden.size(), specs.size());
  for (const auto& [name, grid] : specs) {
    ASSERT_TRUE(golden.count(name)) << "no golden hash for " << name;
    EXPECT_EQ(case_hash_hex(single_case(grid)), golden[name])
        << "hash drift for '" << name
        << "' — this invalidates every existing result cache; regenerate "
           "the fixture only if that is intended";
  }
}

// -- Setup sub-hash ---------------------------------------------------------
//
// The prepared-state cache shares one PreparedCase across every case with
// the same setup sub-hash, so these tests are the safety net against
// state poisoning: a non-setup axis leaking into the hash wastes sharing,
// but a setup axis missing from it hands a case somebody else's box and
// DD grid.

TEST(SetupHash, SetupJsonIsCanonical) {
  const std::string text = setup_json(CaseConfig{});
  EXPECT_EQ(text.find(' '), std::string::npos);
  EXPECT_LT(text.find("\"atoms\""), text.find("\"dd\""));
  EXPECT_LT(text.find("\"dd\""), text.find("\"gpus_per_node\""));
  EXPECT_LT(text.find("\"gpus_per_node\""), text.find("\"nodes\""));
}

TEST(SetupHash, EverySetupAxisMovesIt) {
  const std::map<std::string, std::string> mutations = {
      {"atoms", R"({"atoms":46000})"},
      {"dd", R"({"dd":[2,2,1]})"},
      {"gpus_per_node", R"({"gpus_per_node":8})"},
      {"nodes", R"({"nodes":2})"},
  };
  const std::string base = setup_hash_hex(single_case("{}"));
  std::map<std::string, std::string> seen;
  seen[base] = "<default>";
  for (const auto& [axis, grid] : mutations) {
    const std::string hash = setup_hash_hex(single_case(grid));
    EXPECT_NE(hash, base) << "setup axis '" << axis
                          << "' did not move the setup hash";
    const auto [it, inserted] = seen.emplace(hash, axis);
    EXPECT_TRUE(inserted) << "setup axes '" << axis << "' and '" << it->second
                          << "' collide on " << hash;
  }
}

TEST(SetupHash, NonSetupAxesAreInvariant) {
  // Every axis that only affects execution must leave the setup hash
  // alone — that invariance is exactly what lets transport/fabric/design
  // sweeps share one prepared state.
  const std::vector<std::string> non_setup = {
      R"({"cost_model":"gb200_nvl72"})",
      R"({"cpu_pe_barrier":true})",
      R"({"dependency_partitioning":false})",
      R"({"dt_fs":1.0})",
      R"({"fuse_pulses":false})",
      R"({"fused_signaling":false})",
      R"({"ib_bytes_per_ns":10.0})",
      R"({"ib_latency_ns":2000})",
      R"({"ib_per_message_ns":50})",
      R"({"machine":"gb200_nvl72"})",
      R"({"nvlink_bytes_per_ns":100.0})",
      R"({"nvlink_latency_ns":400})",
      R"({"nvlink_per_message_ns":20})",
      R"({"proxy_placement":"reserved_core"})",
      R"({"prune_interval":8})",
      R"({"prune_low_priority_stream":false})",
      R"({"steps":20})",
      R"({"third_stream_for_update":false})",
      R"({"transport":"mpi"})",
      R"({"use_cuda_graph":true})",
      R"({"use_tma":false})",
      R"({"warmup":5})",
      R"({"workers":2})",
  };
  const std::string base = setup_hash_hex(single_case("{}"));
  for (const std::string& grid : non_setup) {
    EXPECT_EQ(setup_hash_hex(single_case(grid)), base)
        << "non-setup mutation " << grid << " moved the setup hash";
  }
}

TEST(SetupHash, MatchesCheckedInGoldenKeys) {
  const std::map<std::string, std::string> specs = {
      {"default", "{}"},
      {"atoms_90k", R"({"atoms":90000})"},
      {"dd_forced", R"({"dd":[2,2,1]})"},
      {"nvl72_2n4g", R"({"nodes":2,"gpus_per_node":4,"atoms":720000})"},
  };
  std::ifstream in(HS_FIXTURE_DIR "/sweep_golden_setup_keys.txt");
  ASSERT_TRUE(in) << "missing fixture sweep_golden_setup_keys.txt";
  std::map<std::string, std::string> golden;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string name;
    std::string hash;
    ASSERT_TRUE(fields >> name >> hash) << "bad golden line: " << line;
    golden[name] = hash;
  }
  ASSERT_EQ(golden.size(), specs.size());
  for (const auto& [name, grid] : specs) {
    ASSERT_TRUE(golden.count(name)) << "no golden setup key for " << name;
    EXPECT_EQ(setup_hash_hex(single_case(grid)), golden[name])
        << "setup-hash drift for '" << name
        << "' — prepared-state sharing keys change; regenerate the fixture "
           "only if that is intended";
  }
}

}  // namespace
}  // namespace hs::sweep
