#include "sweep/campaign.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hs::sweep {
namespace {

constexpr const char* kHeader = R"("schema":"halosim-campaign-spec-v1")";

std::string spec_with_grid(const std::string& grid_body) {
  return std::string("{") + kHeader + R"(,"name":"t","grid":)" + grid_body +
         "}";
}

TEST(Campaign, ExpandsCartesianProduct) {
  const Campaign c = parse_campaign_text(spec_with_grid(
      R"({"atoms":[45000,90000],"transport":["mpi","shmem"]})"));
  ASSERT_EQ(c.cases.size(), 4u);
  // Axis iteration is alphabetical and the last axis cycles fastest:
  // atoms is the outer loop, transport the inner one.
  EXPECT_EQ(c.cases[0].atoms, 45000);
  EXPECT_EQ(c.cases[0].transport, "mpi");
  EXPECT_EQ(c.cases[1].atoms, 45000);
  EXPECT_EQ(c.cases[1].transport, "shmem");
  EXPECT_EQ(c.cases[2].atoms, 90000);
  EXPECT_EQ(c.cases[3].atoms, 90000);
}

TEST(Campaign, EmptyGridYieldsTheDefaultCase) {
  const Campaign c = parse_campaign_text(spec_with_grid("{}"));
  ASSERT_EQ(c.cases.size(), 1u);
  EXPECT_EQ(c.cases[0].machine, "dgx_h100");
  EXPECT_EQ(c.cases[0].transport, "shmem");
  // "auto" resolves at parse time so the hash names the concrete model.
  EXPECT_EQ(c.cases[0].cost_model, "h100_eos");
}

TEST(Campaign, GridsConcatenateAndDedupByHash) {
  const Campaign c = parse_campaign_text(
      std::string("{") + kHeader +
      R"(,"grids":[{"atoms":[45000,90000]},{"atoms":45000},{"atoms":180000}]})");
  ASSERT_EQ(c.cases.size(), 3u);  // the repeated 45000 case collapses
  EXPECT_EQ(c.cases[0].atoms, 45000);
  EXPECT_EQ(c.cases[1].atoms, 90000);
  EXPECT_EQ(c.cases[2].atoms, 180000);
}

TEST(Campaign, DdScalarFormIsOneShape) {
  const Campaign c =
      parse_campaign_text(spec_with_grid(R"({"dd":[2,2,1]})"));
  ASSERT_EQ(c.cases.size(), 1u);
  EXPECT_TRUE(c.cases[0].dd_forced());
  EXPECT_EQ(c.cases[0].dd[0], 2);
}

TEST(Campaign, DdListFormIsAnAxis) {
  const Campaign c = parse_campaign_text(
      spec_with_grid(R"({"dd":[[2,2,1],[4,1,1]],"gpus_per_node":4})"));
  ASSERT_EQ(c.cases.size(), 2u);
  EXPECT_EQ(c.cases[0].dd[0], 2);
  EXPECT_EQ(c.cases[1].dd[0], 4);
}

TEST(Campaign, RejectsBadSpecs) {
  EXPECT_THROW(parse_campaign_text("[]"), std::runtime_error);
  EXPECT_THROW(parse_campaign_text(R"({"schema":"nope","grid":{}})"),
               std::runtime_error);
  // No grid at all.
  EXPECT_THROW(parse_campaign_text(std::string("{") + kHeader + "}"),
               std::runtime_error);
  EXPECT_THROW(parse_campaign_text(
                   std::string("{") + kHeader + R"(,"bogus_key":1,"grid":{}})"),
               std::runtime_error);
  EXPECT_THROW(parse_campaign_text(spec_with_grid(R"({"no_such_axis":1})")),
               std::runtime_error);
  EXPECT_THROW(parse_campaign_text(spec_with_grid(R"({"atoms":[]})")),
               std::runtime_error);
  EXPECT_THROW(parse_campaign_text(spec_with_grid(R"({"transport":"rdma"})")),
               std::runtime_error);
  EXPECT_THROW(parse_campaign_text(spec_with_grid(R"({"machine":"dgx_a100"})")),
               std::runtime_error);
  EXPECT_THROW(
      parse_campaign_text(spec_with_grid(R"({"steps":4,"warmup":4})")),
      std::runtime_error);
  // Forced DD must cover nodes * gpus_per_node ranks (here 1x4).
  EXPECT_THROW(parse_campaign_text(spec_with_grid(R"({"dd":[2,2,2]})")),
               std::runtime_error);
}

TEST(Campaign, DuplicateLabelsGetHashSuffixes) {
  // dt_fs does not appear in the label, so these two cases collide and
  // must be disambiguated deterministically.
  const Campaign c =
      parse_campaign_text(spec_with_grid(R"({"dt_fs":[1.0,2.0]})"));
  ASSERT_EQ(c.cases.size(), 2u);
  const auto labels = case_labels(c.cases);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[0].find(" #"), std::string::npos);
  EXPECT_EQ(labels[0].find(" #"), labels[1].find(" #"));
}

TEST(Campaign, ToCaseSpecMapsFields) {
  const Campaign c = parse_campaign_text(spec_with_grid(
      R"({"machine":"gb200_nvl72","nodes":2,"gpus_per_node":4,
          "transport":"mpi","atoms":720000,"dd":[4,2,1],
          "nvlink_latency_ns":999,"use_tma":false,"workers":3})"));
  ASSERT_EQ(c.cases.size(), 1u);
  const runner::CaseSpec spec = to_case_spec(c.cases[0]);
  EXPECT_EQ(spec.atoms, 720000);
  EXPECT_EQ(spec.topology.device_count(), 8);
  EXPECT_EQ(spec.config.transport, halo::Transport::Mpi);
  EXPECT_FALSE(spec.config.halo_tuning.use_tma);
  EXPECT_EQ(spec.cost_model.fabric.nvlink.latency_ns, 999);
  EXPECT_EQ(spec.workers, 3);
  ASSERT_TRUE(spec.dd.has_value());
  EXPECT_EQ(spec.dd->nx, 4);
}

TEST(Campaign, AtomsLabelRendering) {
  EXPECT_EQ(atoms_label(45000), "45k");
  EXPECT_EQ(atoms_label(720000), "720k");
  EXPECT_EQ(atoms_label(1440000), "1.44M");
  EXPECT_EQ(atoms_label(23040000), "23.04M");
  EXPECT_EQ(atoms_label(5000000), "5M");
  EXPECT_EQ(atoms_label(123), "123");
}

}  // namespace
}  // namespace hs::sweep
