#include "sweep/cache.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace hs::sweep {
namespace {

namespace fs = std::filesystem;

// A minimal document that passes validate_case_document.
const std::string kDoc =
    "{\"schema\":\"halosim-bench-metrics-v1\",\"cases\":{\n"
    "  \"abc\":{\"t_us\":1.5}\n},\n\"config\":{}}\n";

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("hs_cache_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir() const { return dir_.string(); }

 private:
  fs::path dir_;
};

TEST_F(CacheTest, MissThenStoreThenByteIdenticalHit) {
  const ResultCache cache(dir());
  ASSERT_TRUE(cache.enabled());
  EXPECT_FALSE(cache.load("deadbeefdeadbeef").has_value());
  ASSERT_TRUE(cache.store("deadbeefdeadbeef", kDoc));
  const auto hit = cache.load("deadbeefdeadbeef");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, kDoc);  // byte-identical round trip
  // The entry lives where docs/sweep.md says it does.
  EXPECT_TRUE(fs::exists(fs::path(dir()) / "deadbeefdeadbeef.json"));
}

TEST_F(CacheTest, CorruptEntriesReadAsMisses) {
  const ResultCache cache(dir());
  ASSERT_TRUE(cache.store("aaaaaaaaaaaaaaaa", kDoc));
  const auto write_entry = [&](const std::string& text) {
    std::ofstream os(cache.path("aaaaaaaaaaaaaaaa"), std::ios::trunc);
    os << text;
  };
  write_entry("not json at all {{{");
  EXPECT_FALSE(cache.load("aaaaaaaaaaaaaaaa").has_value());
  // Truncated mid-write (the failure mode of a killed shard).
  write_entry(kDoc.substr(0, kDoc.size() / 2));
  EXPECT_FALSE(cache.load("aaaaaaaaaaaaaaaa").has_value());
  write_entry("{\"schema\":\"wrong-schema\",\"cases\":{\"a\":{}}}");
  EXPECT_FALSE(cache.load("aaaaaaaaaaaaaaaa").has_value());
  write_entry("{\"schema\":\"halosim-bench-metrics-v1\",\"cases\":{}}");
  EXPECT_FALSE(cache.load("aaaaaaaaaaaaaaaa").has_value());
  // Re-storing repairs the entry.
  ASSERT_TRUE(cache.store("aaaaaaaaaaaaaaaa", kDoc));
  EXPECT_EQ(cache.load("aaaaaaaaaaaaaaaa").value_or(""), kDoc);
}

TEST_F(CacheTest, DisabledCacheNeverHitsButStoreSucceeds) {
  const ResultCache cache("");
  EXPECT_FALSE(cache.enabled());
  EXPECT_TRUE(cache.store("bbbbbbbbbbbbbbbb", kDoc));
  EXPECT_FALSE(cache.load("bbbbbbbbbbbbbbbb").has_value());
}

TEST_F(CacheTest, MemoizeServesHitsWithoutDisk) {
  ResultCache cache("");  // no disk layer at all
  cache.set_memoize(true);
  EXPECT_FALSE(cache.load("cccccccccccccccc").has_value());
  EXPECT_TRUE(cache.store("cccccccccccccccc", kDoc));
  EXPECT_EQ(cache.load("cccccccccccccccc").value_or(""), kDoc);
}

TEST_F(CacheTest, MemoizeOverlaysTheDiskLayer) {
  ResultCache cache(dir());
  cache.set_memoize(true);
  ASSERT_TRUE(cache.store("dddddddddddddddd", kDoc));
  // Even with the file gone the memo answers — the server's warm cache.
  fs::remove(cache.path("dddddddddddddddd"));
  EXPECT_EQ(cache.load("dddddddddddddddd").value_or(""), kDoc);
}

TEST_F(CacheTest, MaxEntriesEvictsOldestMtimeFirst) {
  ResultCache cache(dir());
  cache.set_max_entries(3);
  const std::vector<std::string> hashes = {
      "1111111111111111", "2222222222222222", "3333333333333333"};
  for (const std::string& h : hashes) ASSERT_TRUE(cache.store(h, kDoc));
  // Pin distinct mtimes so eviction order is deterministic regardless of
  // filesystem timestamp resolution: entry 2 is the oldest.
  const auto base = fs::last_write_time(cache.path(hashes[0]));
  fs::last_write_time(cache.path(hashes[1]), base - std::chrono::hours(2));
  fs::last_write_time(cache.path(hashes[2]), base - std::chrono::hours(1));
  EXPECT_EQ(cache.dropped(), 0u);

  ASSERT_TRUE(cache.store("4444444444444444", kDoc));
  EXPECT_EQ(cache.dropped(), 1u);
  EXPECT_FALSE(fs::exists(cache.path(hashes[1])));  // oldest mtime evicted
  EXPECT_TRUE(fs::exists(cache.path(hashes[0])));
  EXPECT_TRUE(fs::exists(cache.path(hashes[2])));
  EXPECT_TRUE(fs::exists(cache.path("4444444444444444")));
  // An evicted entry simply reads as a miss again.
  EXPECT_FALSE(cache.load(hashes[1]).has_value());
}

TEST_F(CacheTest, MaxEntriesTiesBreakByFilename) {
  ResultCache cache(dir());
  ASSERT_TRUE(cache.store("bbbbbbbbbbbbbbbb", kDoc));
  ASSERT_TRUE(cache.store("aaaaaaaaaaaaaaaa", kDoc));
  // Force identical mtimes; the lexicographically smaller name goes first.
  fs::last_write_time(cache.path("bbbbbbbbbbbbbbbb"),
                      fs::last_write_time(cache.path("aaaaaaaaaaaaaaaa")));
  cache.set_max_entries(2);
  ASSERT_TRUE(cache.store("cccccccccccccccc", kDoc));
  EXPECT_EQ(cache.dropped(), 1u);
  EXPECT_FALSE(fs::exists(cache.path("aaaaaaaaaaaaaaaa")));
  EXPECT_TRUE(fs::exists(cache.path("bbbbbbbbbbbbbbbb")));
  EXPECT_TRUE(fs::exists(cache.path("cccccccccccccccc")));
}

TEST_F(CacheTest, TrimNeverTouchesForeignFiles) {
  ResultCache cache(dir());
  cache.set_max_entries(1);
  ASSERT_TRUE(cache.store("eeeeeeeeeeeeeeee", kDoc));
  // Files the cache does not own: wrong length, non-hex name, tmp suffix.
  const std::vector<std::string> foreign = {
      "README.txt", "deadbeef.json", "ffffffffffffffff.json.tmp.123",
      "ZZZZZZZZZZZZZZZZ.json"};
  for (const std::string& name : foreign) {
    std::ofstream os(fs::path(dir()) / name);
    os << "not a cache entry";
  }
  ASSERT_TRUE(cache.store("ffffffffffffffff", kDoc));
  EXPECT_EQ(cache.dropped(), 1u);  // only the real oldest entry
  for (const std::string& name : foreign) {
    EXPECT_TRUE(fs::exists(fs::path(dir()) / name)) << name << " was evicted";
  }
}

TEST_F(CacheTest, ZeroMaxEntriesMeansUnbounded) {
  ResultCache cache(dir());
  ASSERT_EQ(cache.max_entries(), 0u);
  for (int i = 0; i < 8; ++i) {
    const std::string h(16, static_cast<char>('0' + i));
    ASSERT_TRUE(cache.store(h, kDoc));
  }
  EXPECT_EQ(cache.dropped(), 0u);
  int entries = 0;
  for ([[maybe_unused]] const auto& de : fs::directory_iterator(dir())) {
    ++entries;
  }
  EXPECT_EQ(entries, 8);
}

TEST(CacheValidation, ValidateCaseDocument) {
  EXPECT_TRUE(validate_case_document(kDoc));
  EXPECT_FALSE(validate_case_document(""));
  EXPECT_FALSE(validate_case_document("[]"));
  EXPECT_FALSE(validate_case_document("{\"cases\":{\"a\":{}}}"));
}

}  // namespace
}  // namespace hs::sweep
