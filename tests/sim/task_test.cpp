#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hs::sim {
namespace {

Task delayer(std::vector<SimTime>* log, Engine* engine, SimTime d1, SimTime d2) {
  co_await Delay{d1};
  log->push_back(engine->now());
  co_await Delay{d2};
  log->push_back(engine->now());
}

TEST(Task, DelaysAdvanceLocalTime) {
  Engine e;
  std::vector<SimTime> log;
  Task t = delayer(&log, &e, 10, 5);
  t.bind({&e, nullptr, 0});
  bool completed = false;
  t.set_on_complete([&] { completed = true; });
  t.start();
  e.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(log, (std::vector<SimTime>{10, 15}));
  EXPECT_TRUE(t.done());
}

Task zero_delay(int* count) {
  co_await Delay{0};  // await_ready fast-path
  ++*count;
}

TEST(Task, ZeroDelayDoesNotSuspend) {
  Engine e;
  int count = 0;
  Task t = zero_delay(&count);
  t.bind({&e, nullptr, 0});
  t.start();
  EXPECT_EQ(count, 1);  // ran to completion synchronously
  e.run();
}

Task capture_ctx(ExecContext* out) {
  *out = co_await CurrentContext{};
}

TEST(Task, CurrentContextExposesBinding) {
  Engine e;
  ExecContext seen;
  Task t = capture_ctx(&seen);
  t.bind({&e, nullptr, 7});
  t.start();
  e.run();
  EXPECT_EQ(seen.engine, &e);
  EXPECT_EQ(seen.priority, 7);
}

Task thrower() {
  co_await Delay{1};
  throw std::runtime_error("device fault");
}

TEST(Task, ExceptionSurfacesThroughEngineRun) {
  Engine e;
  Task t = thrower();
  t.bind({&e, nullptr, 0});
  t.start();
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Task, ConcurrentTasksInterleaveDeterministically) {
  Engine e;
  std::vector<SimTime> log_a, log_b;
  Task a = delayer(&log_a, &e, 10, 10);
  Task b = delayer(&log_b, &e, 5, 10);
  a.bind({&e, nullptr, 0});
  b.bind({&e, nullptr, 0});
  a.start();
  b.start();
  e.run();
  EXPECT_EQ(log_a, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(log_b, (std::vector<SimTime>{5, 15}));
}

}  // namespace
}  // namespace hs::sim
