#include "sim/topology.hpp"

#include <gtest/gtest.h>

namespace hs::sim {
namespace {

TEST(Topology, DgxNodesAreSeparateNvlinkDomains) {
  const auto topo = Topology::dgx_h100(4, 8);
  EXPECT_EQ(topo.device_count(), 32);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(8), 1);
  EXPECT_TRUE(topo.same_nvlink_domain(0, 7));
  EXPECT_FALSE(topo.same_nvlink_domain(7, 8));
  EXPECT_EQ(topo.link(0, 7), LinkType::NVLink);
  EXPECT_EQ(topo.link(0, 8), LinkType::IB);
  EXPECT_EQ(topo.link(3, 3), LinkType::Loopback);
}

TEST(Topology, Nvl72RackIsOneNvlinkDomain) {
  const auto topo = Topology::gb200_nvl72(8, 4);
  EXPECT_EQ(topo.device_count(), 32);
  // Every pair of distinct devices is NVLink-reachable (Fig. 4's MNNVL).
  EXPECT_EQ(topo.link(0, 31), LinkType::NVLink);
  EXPECT_TRUE(topo.same_nvlink_domain(0, 31));
  // Nodes still exist (CPU-side placement) even though links are uniform.
  EXPECT_EQ(topo.node_of(31), 7);
}

TEST(Topology, SingleGpuHasOnlyLoopback) {
  const auto topo = Topology::dgx_h100(1, 1);
  EXPECT_EQ(topo.device_count(), 1);
  EXPECT_EQ(topo.link(0, 0), LinkType::Loopback);
}

TEST(Topology, LinkTypeNames) {
  EXPECT_EQ(to_string(LinkType::Loopback), "loopback");
  EXPECT_EQ(to_string(LinkType::NVLink), "nvlink");
  EXPECT_EQ(to_string(LinkType::IB), "ib");
}

}  // namespace
}  // namespace hs::sim
