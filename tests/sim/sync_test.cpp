#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hs::sim {
namespace {

Task wait_signal(Signal* sig, std::int64_t thr, Engine* e, SimTime* woke_at) {
  co_await sig->wait_ge(thr);
  *woke_at = e->now();
}

TEST(Signal, WaiterWakesWhenThresholdReached) {
  Engine e;
  Signal sig(e);
  SimTime woke_at = -1;
  Task t = wait_signal(&sig, 3, &e, &woke_at);
  t.bind({&e, nullptr, 0});
  t.start();
  e.schedule_at(10, [&] { sig.store(2); });
  e.schedule_at(20, [&] { sig.store(3); });
  e.run();
  EXPECT_EQ(woke_at, 20);
}

TEST(Signal, AlreadySatisfiedDoesNotSuspend) {
  Engine e;
  Signal sig(e);
  sig.store(5);
  SimTime woke_at = -1;
  Task t = wait_signal(&sig, 5, &e, &woke_at);
  t.bind({&e, nullptr, 0});
  t.start();
  EXPECT_EQ(woke_at, 0);  // resumed synchronously via await_ready
  e.run();
}

TEST(Signal, AddAccumulates) {
  Engine e;
  Signal sig(e);
  sig.add(2);
  sig.add(3);
  EXPECT_EQ(sig.value(), 5);
}

TEST(Signal, WhenGeCallbackStyle) {
  Engine e;
  Signal sig(e);
  std::vector<int> order;
  sig.when_ge(1, [&] { order.push_back(1); });
  sig.when_ge(2, [&] { order.push_back(2); });
  e.schedule_at(5, [&] { sig.store(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Signal, ResetDoesNotWakeWaiters) {
  Engine e;
  Signal sig(e);
  bool woke = false;
  sig.when_ge(1, [&] { woke = true; });
  sig.reset(10);  // reuse between steps: raw value change, no wake
  e.run();
  EXPECT_FALSE(woke);
  EXPECT_EQ(sig.value(), 10);
  sig.store(10);  // an actual store at the same value does wake
  e.run();
  EXPECT_TRUE(woke);
}

TEST(GpuEvent, CompleteWakesAllWaiters) {
  Engine e;
  GpuEvent ev(e);
  int woken = 0;
  ev.when_complete([&] { ++woken; });
  ev.when_complete([&] { ++woken; });
  EXPECT_FALSE(ev.is_complete());
  e.schedule_at(7, [&] { ev.complete(); });
  e.run();
  EXPECT_TRUE(ev.is_complete());
  EXPECT_EQ(ev.completed_at(), 7);
  EXPECT_EQ(woken, 2);
}

TEST(GpuEvent, WaitAfterCompleteRunsImmediately) {
  Engine e;
  GpuEvent ev(e);
  ev.complete();
  bool ran = false;
  ev.when_complete([&] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
}

TEST(GpuEvent, DoubleCompleteIsIdempotent) {
  Engine e;
  GpuEvent ev(e);
  e.schedule_at(3, [&] { ev.complete(); });
  e.run();
  ev.complete();
  EXPECT_EQ(ev.completed_at(), 3);
}

Task barrier_participant(BlockBarrier* bar, SimTime pre_delay, Engine* e,
                         std::vector<SimTime>* done_times) {
  co_await Delay{pre_delay};
  co_await bar->arrive_and_wait();
  done_times->push_back(e->now());
}

TEST(BlockBarrier, AllParticipantsReleaseTogether) {
  Engine e;
  BlockBarrier bar(e, 3);
  std::vector<SimTime> done;
  std::vector<Task> tasks;
  for (SimTime d : {5, 10, 20}) {
    tasks.push_back(barrier_participant(&bar, d, &e, &done));
    tasks.back().bind({&e, nullptr, 0});
    tasks.back().start();
  }
  e.run();
  ASSERT_EQ(done.size(), 3u);
  for (SimTime t : done) EXPECT_EQ(t, 20);  // release at last arrival
}

TEST(BlockBarrier, IsReusableAcrossGenerations) {
  Engine e;
  BlockBarrier bar(e, 2);
  std::vector<SimTime> done;
  std::vector<Task> tasks;
  // First generation releases at t=10; the second starts at t=10 (after the
  // first run() drains) and releases at 10 + max(25, 30) = 40.
  for (SimTime d : {10, 5}) {
    tasks.push_back(barrier_participant(&bar, d, &e, &done));
    tasks.back().bind({&e, nullptr, 0});
    tasks.back().start();
  }
  e.run();
  for (SimTime d : {25, 30}) {
    tasks.push_back(barrier_participant(&bar, d, &e, &done));
    tasks.back().bind({&e, nullptr, 0});
    tasks.back().start();
  }
  e.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[0], 10);
  EXPECT_EQ(done[1], 10);
  EXPECT_EQ(done[2], 40);
  EXPECT_EQ(done[3], 40);
}

}  // namespace
}  // namespace hs::sim
