#include "sim/fabric.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace hs::sim {
namespace {

FabricParams test_params() {
  FabricParams p;
  p.loopback = LinkParams{10, 0, 100.0};
  p.nvlink = LinkParams{100, 10, 10.0};
  p.ib = LinkParams{1000, 100, 1.0};
  return p;
}

TEST(Fabric, EstimateNvlink) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(2, 4), test_params());
  // Devices 0 and 1: same node => NVLink. 1000 B at 10 B/ns = 100 ns wire.
  EXPECT_EQ(f.link(0, 1), LinkType::NVLink);
  EXPECT_EQ(f.estimate(0, 1, 1000, 1), 100 + 10 + 100);
}

TEST(Fabric, EstimateIbAcrossNodes) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(2, 4), test_params());
  EXPECT_EQ(f.link(0, 4), LinkType::IB);
  EXPECT_EQ(f.estimate(0, 4, 500, 2), 1000 + 200 + 500);
}

TEST(Fabric, TransferDeliversDataAtCompletionTime) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(2, 4), test_params());
  int payload = 0;
  SimTime delivered_at = -1;
  TransferRequest req;
  req.src_device = 0;
  req.dst_device = 1;
  req.bytes = 1000;
  req.deliver = [&] {
    payload = 7;
    delivered_at = e.now();
  };
  SimTime completed_at = -1;
  f.transfer(std::move(req), [&] { completed_at = e.now(); });
  EXPECT_EQ(payload, 0);  // nothing moved yet
  e.run();
  EXPECT_EQ(payload, 7);
  EXPECT_EQ(delivered_at, 210);
  EXPECT_EQ(completed_at, 210);
}

TEST(Fabric, IbNicSerializesBandwidthButPipelinesLatency) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(2, 1), test_params());
  std::vector<SimTime> done;
  for (int i = 0; i < 2; ++i) {
    TransferRequest req;
    req.src_device = 0;
    req.dst_device = 1;
    req.bytes = 500;  // occupancy 500/1 + 100 = 600 ns
    f.transfer(std::move(req), [&] { done.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 600 + 1000);          // first: occupancy + latency
  EXPECT_EQ(done[1], 600 + 600 + 1000);    // second queues behind first
}

TEST(Fabric, NvlinkTransfersDoNotQueue) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(1, 2), test_params());
  std::vector<SimTime> done;
  for (int i = 0; i < 2; ++i) {
    TransferRequest req;
    req.src_device = 0;
    req.dst_device = 1;
    req.bytes = 100;
    f.transfer(std::move(req), [&] { done.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], done[1]);  // full parallelism on NVLink
}

TEST(Fabric, ProxySlowdownInflatesIbPerMessageCost) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(2, 1), test_params());
  const SimTime healthy = f.estimate(0, 1, 0, 10);
  f.set_proxy_slowdown(0, 50.0);
  const SimTime contended = f.estimate(0, 1, 0, 10);
  EXPECT_EQ(healthy, 1000 + 10 * 100);
  EXPECT_EQ(contended, 1000 + 10 * 100 * 50);
}

TEST(Fabric, ProxySlowdownDoesNotAffectNvlink) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(1, 2), test_params());
  f.set_proxy_slowdown(0, 50.0);
  EXPECT_EQ(f.estimate(0, 1, 1000, 1), 100 + 10 + 100);
}

TEST(Fabric, JitterExtendsIbNicOccupancy) {
  // Regression: jitter used to be added to complete_at only, after the
  // nic_busy_until_ update, so a follow-up IB transfer could start (and
  // finish) before the jittered wire actually drained.
  Engine e;
  Fabric f(e, Topology::dgx_h100(2, 1), test_params());
  const std::uint64_t seed = 3;
  const SimTime max_jitter = 500;
  f.set_timing_jitter(seed, max_jitter);

  // Replicate the fabric's jitter stream to get exact expected times.
  std::uint64_t state = seed;
  const auto j1 = static_cast<SimTime>(
      util::splitmix64(state) % static_cast<std::uint64_t>(max_jitter + 1));
  const auto j2 = static_cast<SimTime>(
      util::splitmix64(state) % static_cast<std::uint64_t>(max_jitter + 1));
  ASSERT_GT(j1, j2);  // seed chosen so the broken ordering is observable

  std::vector<SimTime> done;
  for (int i = 0; i < 2; ++i) {
    TransferRequest req;
    req.src_device = 0;
    req.dst_device = 1;
    req.bytes = 500;  // service = 500/1 + 100 = 600 ns
    f.transfer(std::move(req), [&] { done.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 600 + j1 + 1000);
  EXPECT_EQ(done[1], (600 + j1) + (600 + j2) + 1000);
  // The NIC must fully drain the first (jittered) transfer before the
  // second completes its own occupancy window.
  EXPECT_GE(done[1] - done[0], 600);
}

TEST(Fabric, CountersAccumulatePerLinkType) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(2, 4), test_params());

  auto send = [&](int src, int dst, std::size_t bytes, int msgs) {
    TransferRequest req;
    req.src_device = src;
    req.dst_device = dst;
    req.bytes = bytes;
    req.num_messages = msgs;
    f.transfer(std::move(req));
  };
  send(0, 0, 64, 1);     // loopback
  send(0, 1, 1000, 2);   // nvlink
  send(2, 3, 500, 1);    // nvlink
  send(0, 4, 2048, 4);   // ib
  e.run();

  const FabricCounters& c = f.counters();
  EXPECT_EQ(c.link(LinkType::Loopback).transfers, 1u);
  EXPECT_EQ(c.link(LinkType::Loopback).bytes, 64u);
  EXPECT_EQ(c.link(LinkType::NVLink).transfers, 2u);
  EXPECT_EQ(c.link(LinkType::NVLink).messages, 3u);
  EXPECT_EQ(c.link(LinkType::NVLink).bytes, 1500u);
  EXPECT_EQ(c.link(LinkType::IB).transfers, 1u);
  EXPECT_EQ(c.link(LinkType::IB).messages, 4u);
  EXPECT_EQ(c.link(LinkType::IB).bytes, 2048u);
  EXPECT_EQ(c.total_transfers(), 4u);
  EXPECT_EQ(c.total_bytes(), 64u + 1500u + 2048u);
  // IB occupancy: 4 * 100 + 2048/1 = 2448 ns on dev0's NIC, no queueing.
  ASSERT_EQ(c.nic_busy_ns.size(), 8u);
  EXPECT_EQ(c.nic_busy_ns[0], 2448u);
  EXPECT_EQ(c.nic_queue_ns[0], 0u);
  EXPECT_EQ(c.proxy_delay_ns[0], 0u);

  f.reset_counters();
  EXPECT_EQ(f.counters().total_transfers(), 0u);
  EXPECT_EQ(f.counters().nic_busy_ns[0], 0u);
}

TEST(Fabric, CountersTrackQueueingAndProxyDelay) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(2, 1), test_params());
  f.set_proxy_slowdown(0, 2.0);
  for (int i = 0; i < 2; ++i) {
    TransferRequest req;
    req.src_device = 0;
    req.dst_device = 1;
    req.bytes = 500;  // healthy service 600 ns -> slowed to 1200 ns
    f.transfer(std::move(req));
  }
  e.run();
  const FabricCounters& c = f.counters();
  EXPECT_EQ(c.nic_busy_ns[0], 2400u);    // 2 * 1200
  EXPECT_EQ(c.nic_queue_ns[0], 1200u);   // second waited behind the first
  EXPECT_EQ(c.proxy_delay_ns[0], 1200u); // 2 * (1200 - 600)
}

TEST(Fabric, LoopbackIsCheap) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(1, 2), test_params());
  EXPECT_EQ(f.link(0, 0), LinkType::Loopback);
  EXPECT_LT(f.estimate(0, 0, 1000, 1), f.estimate(0, 1, 1000, 1));
}

}  // namespace
}  // namespace hs::sim
