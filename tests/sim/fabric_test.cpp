#include "sim/fabric.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hs::sim {
namespace {

FabricParams test_params() {
  FabricParams p;
  p.loopback = LinkParams{10, 0, 100.0};
  p.nvlink = LinkParams{100, 10, 10.0};
  p.ib = LinkParams{1000, 100, 1.0};
  return p;
}

TEST(Fabric, EstimateNvlink) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(2, 4), test_params());
  // Devices 0 and 1: same node => NVLink. 1000 B at 10 B/ns = 100 ns wire.
  EXPECT_EQ(f.link(0, 1), LinkType::NVLink);
  EXPECT_EQ(f.estimate(0, 1, 1000, 1), 100 + 10 + 100);
}

TEST(Fabric, EstimateIbAcrossNodes) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(2, 4), test_params());
  EXPECT_EQ(f.link(0, 4), LinkType::IB);
  EXPECT_EQ(f.estimate(0, 4, 500, 2), 1000 + 200 + 500);
}

TEST(Fabric, TransferDeliversDataAtCompletionTime) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(2, 4), test_params());
  int payload = 0;
  SimTime delivered_at = -1;
  TransferRequest req;
  req.src_device = 0;
  req.dst_device = 1;
  req.bytes = 1000;
  req.deliver = [&] {
    payload = 7;
    delivered_at = e.now();
  };
  SimTime completed_at = -1;
  f.transfer(std::move(req), [&] { completed_at = e.now(); });
  EXPECT_EQ(payload, 0);  // nothing moved yet
  e.run();
  EXPECT_EQ(payload, 7);
  EXPECT_EQ(delivered_at, 210);
  EXPECT_EQ(completed_at, 210);
}

TEST(Fabric, IbNicSerializesBandwidthButPipelinesLatency) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(2, 1), test_params());
  std::vector<SimTime> done;
  for (int i = 0; i < 2; ++i) {
    TransferRequest req;
    req.src_device = 0;
    req.dst_device = 1;
    req.bytes = 500;  // occupancy 500/1 + 100 = 600 ns
    f.transfer(std::move(req), [&] { done.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 600 + 1000);          // first: occupancy + latency
  EXPECT_EQ(done[1], 600 + 600 + 1000);    // second queues behind first
}

TEST(Fabric, NvlinkTransfersDoNotQueue) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(1, 2), test_params());
  std::vector<SimTime> done;
  for (int i = 0; i < 2; ++i) {
    TransferRequest req;
    req.src_device = 0;
    req.dst_device = 1;
    req.bytes = 100;
    f.transfer(std::move(req), [&] { done.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], done[1]);  // full parallelism on NVLink
}

TEST(Fabric, ProxySlowdownInflatesIbPerMessageCost) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(2, 1), test_params());
  const SimTime healthy = f.estimate(0, 1, 0, 10);
  f.set_proxy_slowdown(0, 50.0);
  const SimTime contended = f.estimate(0, 1, 0, 10);
  EXPECT_EQ(healthy, 1000 + 10 * 100);
  EXPECT_EQ(contended, 1000 + 10 * 100 * 50);
}

TEST(Fabric, ProxySlowdownDoesNotAffectNvlink) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(1, 2), test_params());
  f.set_proxy_slowdown(0, 50.0);
  EXPECT_EQ(f.estimate(0, 1, 1000, 1), 100 + 10 + 100);
}

TEST(Fabric, LoopbackIsCheap) {
  Engine e;
  Fabric f(e, Topology::dgx_h100(1, 2), test_params());
  EXPECT_EQ(f.link(0, 0), LinkType::Loopback);
  EXPECT_LT(f.estimate(0, 0, 1000, 1), f.estimate(0, 1, 1000, 1));
}

}  // namespace
}  // namespace hs::sim
