// Regression harness for the flat-storage Device (DESIGN.md §2.1).
//
// The processor-sharing model used to live in a std::map with a full
// re-derivation of the priority tiers on every change; the current
// implementation keeps spans in an id-sorted vector with cached per-tier
// demand sums. The refactor must not change *any* observable timing — the
// figure reproductions depend on bit-identical schedules.
//
// ReferenceDevice below reimplements the original model verbatim (map
// storage, full recompute per mutation). Both models replay the same
// pseudo-random span/hold schedule on their own engines and must agree
// exactly: completion order, completion timestamps, sampled span speeds,
// and final simulated time.
#include "sim/device.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace hs::sim {
namespace {

constexpr double kWorkEpsilon = 1e-6;

// The pre-refactor Device, kept as an executable specification.
class ReferenceDevice {
 public:
  using SpanId = std::uint64_t;

  ReferenceDevice(Engine& engine, double sm_capacity = 1.0)
      : engine_(&engine), sm_capacity_(sm_capacity) {}

  SpanId begin_span(double work_ns, double demand, int priority,
                    std::function<void()> on_done) {
    settle();
    const SpanId id = next_id_++;
    spans_.emplace(id, Span{work_ns, demand, priority, 1.0, kNever,
                            std::move(on_done)});
    recompute();
    schedule_check();
    return id;
  }

  SpanId begin_hold(double demand, int priority) {
    settle();
    const SpanId id = next_id_++;
    spans_.emplace(id, Span{std::numeric_limits<double>::infinity(), demand,
                            priority, 1.0, kNever, nullptr});
    recompute();
    schedule_check();
    return id;
  }

  void end_hold(SpanId id) {
    settle();
    spans_.erase(spans_.find(id));
    recompute();
    schedule_check();
  }

  double span_speed(SpanId id) const {
    const auto it = spans_.find(id);
    return it != spans_.end() ? it->second.speed : 0.0;
  }

 private:
  struct Span {
    double remaining;
    double demand;
    int priority;
    double speed = 1.0;
    SimTime finish_at = kNever;
    std::function<void()> on_done;
  };

  void settle() {
    const SimTime now = engine_->now();
    const SimTime elapsed = now - last_settle_;
    if (elapsed > 0) {
      for (auto& [_, s] : spans_) {
        s.remaining -= static_cast<double>(elapsed) * s.speed;
        if (s.remaining < 0.0) s.remaining = 0.0;
      }
    }
    last_settle_ = now;
  }

  void recompute() {
    std::vector<int> priorities;
    for (const auto& [_, s] : spans_) priorities.push_back(s.priority);
    std::sort(priorities.begin(), priorities.end(), std::greater<>());
    priorities.erase(std::unique(priorities.begin(), priorities.end()),
                     priorities.end());

    double capacity = sm_capacity_;
    const SimTime now = engine_->now();
    for (int prio : priorities) {
      double tier_demand = 0.0;
      for (const auto& [_, s] : spans_) {
        if (s.priority == prio) tier_demand += s.demand;
      }
      const double alloc = std::min(capacity, tier_demand);
      const double scale = tier_demand > 0.0 ? alloc / tier_demand : 0.0;
      capacity -= alloc;
      for (auto& [_, s] : spans_) {
        if (s.priority != prio) continue;
        s.speed = scale;
        if (s.remaining <= kWorkEpsilon) {
          s.finish_at = now;
        } else if (s.speed <= 0.0 || !std::isfinite(s.remaining)) {
          s.finish_at = kNever;
        } else {
          s.finish_at =
              now + static_cast<SimTime>(std::ceil(s.remaining / s.speed));
        }
      }
    }
  }

  void schedule_check() {
    SimTime next = kNever;
    for (const auto& [_, s] : spans_) next = std::min(next, s.finish_at);
    if (next == kNever) return;
    const std::uint64_t gen = ++sched_gen_;
    engine_->schedule_at(next, [this, gen] { on_check(gen); });
  }

  void on_check(std::uint64_t gen) {
    if (gen != sched_gen_) return;
    settle();
    const SimTime now = engine_->now();
    std::vector<std::function<void()>> done;
    for (auto it = spans_.begin(); it != spans_.end();) {
      if (it->second.finish_at <= now) {
        done.push_back(std::move(it->second.on_done));
        it = spans_.erase(it);
      } else {
        ++it;
      }
    }
    recompute();
    schedule_check();
    for (auto& fn : done) {
      if (fn) fn();
    }
  }

  Engine* engine_;
  double sm_capacity_;
  std::map<SpanId, Span> spans_;
  SpanId next_id_ = 1;
  std::uint64_t sched_gen_ = 0;
  SimTime last_settle_ = 0;
};

// Deterministic 64-bit LCG (no <random> so the stream is fixed forever).
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
  // Uniform in [lo, hi] over a coarse grid — both models do identical
  // double arithmetic either way; the grid just keeps the values readable.
  double pick(double lo, double hi, int steps) {
    const auto k = next() % static_cast<std::uint64_t>(steps);
    return lo + (hi - lo) * static_cast<double>(k) /
                    static_cast<double>(steps - 1);
  }
};

struct Completion {
  int label;
  SimTime at;
  bool operator==(const Completion&) const = default;
};

// One pseudo-random schedule: overlapping spans across three priorities,
// holds with delayed ends, and reentrant spawn-on-completion, recorded as
// (label, completion time) pairs plus sampled speeds.
template <typename DeviceT>
void drive(Engine& engine, DeviceT& device, std::uint64_t seed,
           std::vector<Completion>& completions, std::vector<double>& speeds) {
  Lcg rng{seed};
  SimTime t = 0;
  for (int i = 0; i < 120; ++i) {
    t += static_cast<SimTime>(rng.next() % 400);
    const double work = rng.pick(50.0, 3000.0, 64);
    const double demand = rng.pick(0.05, 1.0, 20);
    const int priority = static_cast<int>(rng.next() % 3);
    const int kind = static_cast<int>(rng.next() % 5);
    if (kind == 0) {
      // A hold that releases after a random dwell.
      const SimTime dwell = 200 + static_cast<SimTime>(rng.next() % 2000);
      engine.schedule_at(t, [&device, &engine, demand, priority, dwell] {
        const auto id = device.begin_hold(demand, priority);
        engine.schedule_after(dwell, [&device, id] { device.end_hold(id); });
      });
    } else if (kind == 1) {
      // A span that spawns a follow-up span on completion (reentrant).
      const int label = i;
      engine.schedule_at(
          t, [&device, &completions, &engine, work, demand, priority, label] {
            device.begin_span(
                work, demand, priority,
                [&device, &completions, &engine, work, demand, label] {
                  completions.push_back(Completion{label, engine.now()});
                  device.begin_span(
                      work * 0.5, demand, 0,
                      [&completions, &engine, label] {
                        completions.push_back(
                            Completion{label + 1000, engine.now()});
                      });
                });
          });
    } else {
      const int label = i;
      engine.schedule_at(
          t, [&device, &completions, &engine, work, demand, priority, label] {
            device.begin_span(work, demand, priority,
                              [&completions, &engine, label] {
                                completions.push_back(
                                    Completion{label, engine.now()});
                              });
          });
    }
    // Every few events, probe the speed of the most recent span right
    // after a fixed offset — samples the sharing state mid-flight.
    if (i % 7 == 3) {
      const SimTime probe_at = t + 50;
      engine.schedule_at(probe_at, [&device, &speeds] {
        // Span ids are assigned identically in both models (same event
        // order), so probing a fixed id samples the same logical span.
        speeds.push_back(device.span_speed(3));
        speeds.push_back(device.span_speed(17));
      });
    }
  }
  engine.run();
}

TEST(DeviceSharingRegression, FlatModelMatchesReferenceModelExactly) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xD06F00DULL}) {
    std::vector<Completion> flat_completions;
    std::vector<double> flat_speeds;
    {
      Engine engine;
      Device device(engine, 0, 0);
      drive(engine, device, seed, flat_completions, flat_speeds);
    }

    std::vector<Completion> ref_completions;
    std::vector<double> ref_speeds;
    {
      Engine engine;
      ReferenceDevice device(engine);
      drive(engine, device, seed, ref_completions, ref_speeds);
    }

    ASSERT_EQ(flat_completions.size(), ref_completions.size())
        << "seed=" << seed;
    for (std::size_t k = 0; k < flat_completions.size(); ++k) {
      EXPECT_EQ(flat_completions[k], ref_completions[k])
          << "seed=" << seed << " completion " << k;
    }
    ASSERT_EQ(flat_speeds.size(), ref_speeds.size()) << "seed=" << seed;
    for (std::size_t k = 0; k < flat_speeds.size(); ++k) {
      // Bit-identical, not just close: both models must sum demands in the
      // same (id) order.
      EXPECT_EQ(flat_speeds[k], ref_speeds[k])
          << "seed=" << seed << " probe " << k;
    }
  }
}

}  // namespace
}  // namespace hs::sim
