#include "sim/trace_export.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "util/json.hpp"

namespace hs::sim {
namespace {

namespace json = hs::util::json;

Trace make_trace() {
  Trace t;
  t.set_enabled(true);
  t.record(0, "compute", "nb_local", 100, 2600, 0);
  t.record(0, "comm", "pack_x", 150, 400, 0);
  t.record(1, "compute", "nb_local", 120, 2500, 0);
  t.record(0, "compute", "nb_local", 5000, 7400, 1);
  return t;
}

json::Value export_to_json(const ChromeTraceWriter& w) {
  std::ostringstream os;
  w.write(os);
  return json::parse(os.str());
}

TEST(ChromeTraceExport, RoundTripsThroughJsonParser) {
  ChromeTraceWriter w;
  w.add(make_trace());
  EXPECT_EQ(w.event_count(), 4u);
  EXPECT_FALSE(w.empty());

  const json::Value doc = export_to_json(w);
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.contains("traceEvents"));
  const auto& events = doc.at("traceEvents").as_array();

  std::size_t durations = 0;
  for (const auto& ev : events) {
    const std::string& ph = ev.at("ph").as_string();
    ASSERT_TRUE(ph == "X" || ph == "M") << "unexpected phase " << ph;
    if (ph != "X") continue;
    ++durations;
    EXPECT_GE(ev.at("ts").as_number(), 0.0);
    EXPECT_GE(ev.at("dur").as_number(), 0.0);  // end >= begin
    EXPECT_TRUE(ev.at("args").contains("step"));
  }
  EXPECT_EQ(durations, 4u);
}

TEST(ChromeTraceExport, TagsDeviceStreamAndStep) {
  ChromeTraceWriter w;
  w.add(make_trace());
  const json::Value doc = export_to_json(w);

  // Resolve metadata: pid -> process name, (pid, tid) -> thread name.
  std::map<double, std::string> process_names;
  std::map<std::pair<double, double>, std::string> thread_names;
  for (const auto& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() != "M") continue;
    const std::string& kind = ev.at("name").as_string();
    const std::string& name = ev.at("args").at("name").as_string();
    if (kind == "process_name") {
      process_names[ev.at("pid").as_number()] = name;
    } else if (kind == "thread_name") {
      thread_names[{ev.at("pid").as_number(), ev.at("tid").as_number()}] = name;
    }
  }

  int found = 0;
  for (const auto& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() != "X") continue;
    const double pid = ev.at("pid").as_number();
    const double tid = ev.at("tid").as_number();
    ASSERT_TRUE(process_names.count(pid));
    ASSERT_TRUE(thread_names.count({pid, tid}));
    if (ev.at("name").as_string() == "pack_x") {
      ++found;
      EXPECT_EQ(process_names[pid], "dev0");
      EXPECT_EQ(thread_names[(std::pair{pid, tid})], "comm");
      // ts/dur are microseconds: begin 150 ns = 0.15 us, dur 250 ns.
      EXPECT_DOUBLE_EQ(ev.at("ts").as_number(), 0.15);
      EXPECT_DOUBLE_EQ(ev.at("dur").as_number(), 0.25);
      EXPECT_DOUBLE_EQ(ev.at("args").at("step").as_number(), 0.0);
    }
    if (ev.at("name").as_string() == "nb_local" &&
        ev.at("args").at("step").as_number() == 1.0) {
      EXPECT_EQ(process_names[pid], "dev0");
    }
  }
  EXPECT_EQ(found, 1);
}

TEST(ChromeTraceExport, MultipleAddsGetDisjointPidsAndLabels) {
  ChromeTraceWriter w;
  w.add(make_trace(), "mpi");
  w.add(make_trace(), "shmem");
  EXPECT_EQ(w.event_count(), 8u);

  const json::Value doc = export_to_json(w);
  std::map<std::string, double> pid_of;
  for (const auto& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() != "M") continue;
    if (ev.at("name").as_string() != "process_name") continue;
    pid_of[ev.at("args").at("name").as_string()] = ev.at("pid").as_number();
  }
  ASSERT_TRUE(pid_of.count("mpi dev0"));
  ASSERT_TRUE(pid_of.count("mpi dev1"));
  ASSERT_TRUE(pid_of.count("shmem dev0"));
  ASSERT_TRUE(pid_of.count("shmem dev1"));
  std::set<double> pids;
  for (const auto& [name, pid] : pid_of) pids.insert(pid);
  EXPECT_EQ(pids.size(), 4u);  // no pid collisions across runs
}

TEST(ChromeTraceExport, EmptyTraceStillProducesValidJson) {
  Trace t;  // disabled: no records
  std::ostringstream os;
  write_chrome_trace(t, os);
  const json::Value doc = json::parse(os.str());
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
}

TEST(ChromeTraceExport, EdgesBecomePairedFlowEvents) {
  Trace t;
  t.set_enabled(true);
  const auto xfer =
      t.record(0, "nic", "put ->d1", 100, 900, 0, SpanKind::Transfer, 0, 0, 1);
  const auto wait =
      t.record(1, "sync", "coordSig[0]", 200, 900, 0, SpanKind::Wait);
  const auto unpack = t.record(1, "comm", "unpack_f", 900, 1200, 0);
  t.add_edge(xfer, wait, EdgeKind::SignalSetWait);
  t.add_edge(wait, unpack, EdgeKind::StreamOrder);

  ChromeTraceWriter w;
  w.add(t);
  EXPECT_EQ(w.edge_count(), 2u);
  const json::Value doc = export_to_json(w);

  std::map<double, int> starts;
  std::map<double, int> finishes;
  std::set<std::string> flow_names;
  for (const auto& ev : doc.at("traceEvents").as_array()) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "X") {
      // Span kinds surface as event categories.
      const std::string& name = ev.at("name").as_string();
      if (name == "put ->d1") {
        EXPECT_EQ(ev.at("cat").as_string(), "transfer");
      }
      if (name == "coordSig[0]") {
        EXPECT_EQ(ev.at("cat").as_string(), "wait");
      }
      if (name == "unpack_f") {
        EXPECT_EQ(ev.at("cat").as_string(), "kernel");
      }
      continue;
    }
    if (ph != "s" && ph != "f") continue;
    flow_names.insert(ev.at("name").as_string());
    EXPECT_EQ(ev.at("cat").as_string(), "flow");
    EXPECT_GE(ev.at("ts").as_number(), 0.0);
    if (ph == "s") {
      ++starts[ev.at("id").as_number()];
    } else {
      EXPECT_EQ(ev.at("bp").as_string(), "e");
      ++finishes[ev.at("id").as_number()];
    }
  }
  // Every flow id has exactly one start and one finish.
  ASSERT_EQ(starts.size(), 2u);
  ASSERT_EQ(finishes.size(), 2u);
  for (const auto& [id, n] : starts) {
    EXPECT_EQ(n, 1);
    EXPECT_EQ(finishes[id], 1);
  }
  EXPECT_TRUE(flow_names.contains("signal_wait"));
  EXPECT_TRUE(flow_names.contains("stream_order"));
}

TEST(ChromeTraceExport, FlowTimestampsStayInsideDestinationSlice) {
  Trace t;
  t.set_enabled(true);
  // The wait begins before the transfer ends (the usual signal-wait shape);
  // the finish event must be clamped into the wait's slice and never
  // precede the start event.
  const auto xfer =
      t.record(0, "nic", "put", 0, 800, 0, SpanKind::Transfer, 0, 0, 1);
  const auto wait = t.record(1, "sync", "sig", 300, 800, 0, SpanKind::Wait);
  t.add_edge(xfer, wait, EdgeKind::SignalSetWait);
  ChromeTraceWriter w;
  w.add(t);
  const json::Value doc = export_to_json(w);
  double s_ts = -1;
  double f_ts = -1;
  for (const auto& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() == "s") s_ts = ev.at("ts").as_number();
    if (ev.at("ph").as_string() == "f") f_ts = ev.at("ts").as_number();
  }
  ASSERT_GE(s_ts, 0.0);
  ASSERT_GE(f_ts, 0.0);
  EXPECT_GE(f_ts, s_ts);   // time-ordered pair
  EXPECT_LE(f_ts, 0.8);    // inside the wait slice [0.3, 0.8] us
  EXPECT_GE(f_ts, 0.3);
}

TEST(ChromeTraceExport, DropsEdgesWhoseSpansAreMissing) {
  Trace t;
  t.set_enabled(true);
  const auto a = t.record(0, "s", "k", 0, 10, 0);
  t.add_edge(a, a + 100, EdgeKind::StreamOrder);  // dst never recorded
  ChromeTraceWriter w;
  w.add(t);
  const json::Value doc = export_to_json(w);  // must still be valid JSON
  for (const auto& ev : doc.at("traceEvents").as_array()) {
    const std::string& ph = ev.at("ph").as_string();
    EXPECT_TRUE(ph == "X" || ph == "M") << "dangling edge emitted " << ph;
  }
}

TEST(ChromeTraceExport, EscapesSpecialCharactersInNames) {
  Trace t;
  t.set_enabled(true);
  t.record(0, "s\"tr", "kernel \\ \"q\"\n", 0, 10, 0);
  ChromeTraceWriter w;
  w.add(t);
  const json::Value doc = export_to_json(w);  // parse would throw if broken
  bool seen = false;
  for (const auto& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() == "X") {
      EXPECT_EQ(ev.at("name").as_string(), "kernel \\ \"q\"\n");
      seen = true;
    }
  }
  EXPECT_TRUE(seen);
}

}  // namespace
}  // namespace hs::sim
