#include "sim/trace_export.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "util/json.hpp"

namespace hs::sim {
namespace {

namespace json = hs::util::json;

Trace make_trace() {
  Trace t;
  t.set_enabled(true);
  t.record(0, "compute", "nb_local", 100, 2600, 0);
  t.record(0, "comm", "pack_x", 150, 400, 0);
  t.record(1, "compute", "nb_local", 120, 2500, 0);
  t.record(0, "compute", "nb_local", 5000, 7400, 1);
  return t;
}

json::Value export_to_json(const ChromeTraceWriter& w) {
  std::ostringstream os;
  w.write(os);
  return json::parse(os.str());
}

TEST(ChromeTraceExport, RoundTripsThroughJsonParser) {
  ChromeTraceWriter w;
  w.add(make_trace());
  EXPECT_EQ(w.event_count(), 4u);
  EXPECT_FALSE(w.empty());

  const json::Value doc = export_to_json(w);
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.contains("traceEvents"));
  const auto& events = doc.at("traceEvents").as_array();

  std::size_t durations = 0;
  for (const auto& ev : events) {
    const std::string& ph = ev.at("ph").as_string();
    ASSERT_TRUE(ph == "X" || ph == "M") << "unexpected phase " << ph;
    if (ph != "X") continue;
    ++durations;
    EXPECT_GE(ev.at("ts").as_number(), 0.0);
    EXPECT_GE(ev.at("dur").as_number(), 0.0);  // end >= begin
    EXPECT_TRUE(ev.at("args").contains("step"));
  }
  EXPECT_EQ(durations, 4u);
}

TEST(ChromeTraceExport, TagsDeviceStreamAndStep) {
  ChromeTraceWriter w;
  w.add(make_trace());
  const json::Value doc = export_to_json(w);

  // Resolve metadata: pid -> process name, (pid, tid) -> thread name.
  std::map<double, std::string> process_names;
  std::map<std::pair<double, double>, std::string> thread_names;
  for (const auto& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() != "M") continue;
    const std::string& kind = ev.at("name").as_string();
    const std::string& name = ev.at("args").at("name").as_string();
    if (kind == "process_name") {
      process_names[ev.at("pid").as_number()] = name;
    } else if (kind == "thread_name") {
      thread_names[{ev.at("pid").as_number(), ev.at("tid").as_number()}] = name;
    }
  }

  int found = 0;
  for (const auto& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() != "X") continue;
    const double pid = ev.at("pid").as_number();
    const double tid = ev.at("tid").as_number();
    ASSERT_TRUE(process_names.count(pid));
    ASSERT_TRUE(thread_names.count({pid, tid}));
    if (ev.at("name").as_string() == "pack_x") {
      ++found;
      EXPECT_EQ(process_names[pid], "dev0");
      EXPECT_EQ(thread_names[(std::pair{pid, tid})], "comm");
      // ts/dur are microseconds: begin 150 ns = 0.15 us, dur 250 ns.
      EXPECT_DOUBLE_EQ(ev.at("ts").as_number(), 0.15);
      EXPECT_DOUBLE_EQ(ev.at("dur").as_number(), 0.25);
      EXPECT_DOUBLE_EQ(ev.at("args").at("step").as_number(), 0.0);
    }
    if (ev.at("name").as_string() == "nb_local" &&
        ev.at("args").at("step").as_number() == 1.0) {
      EXPECT_EQ(process_names[pid], "dev0");
    }
  }
  EXPECT_EQ(found, 1);
}

TEST(ChromeTraceExport, MultipleAddsGetDisjointPidsAndLabels) {
  ChromeTraceWriter w;
  w.add(make_trace(), "mpi");
  w.add(make_trace(), "shmem");
  EXPECT_EQ(w.event_count(), 8u);

  const json::Value doc = export_to_json(w);
  std::map<std::string, double> pid_of;
  for (const auto& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() != "M") continue;
    if (ev.at("name").as_string() != "process_name") continue;
    pid_of[ev.at("args").at("name").as_string()] = ev.at("pid").as_number();
  }
  ASSERT_TRUE(pid_of.count("mpi dev0"));
  ASSERT_TRUE(pid_of.count("mpi dev1"));
  ASSERT_TRUE(pid_of.count("shmem dev0"));
  ASSERT_TRUE(pid_of.count("shmem dev1"));
  std::set<double> pids;
  for (const auto& [name, pid] : pid_of) pids.insert(pid);
  EXPECT_EQ(pids.size(), 4u);  // no pid collisions across runs
}

TEST(ChromeTraceExport, EmptyTraceStillProducesValidJson) {
  Trace t;  // disabled: no records
  std::ostringstream os;
  write_chrome_trace(t, os);
  const json::Value doc = json::parse(os.str());
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
}

TEST(ChromeTraceExport, EscapesSpecialCharactersInNames) {
  Trace t;
  t.set_enabled(true);
  t.record(0, "s\"tr", "kernel \\ \"q\"\n", 0, 10, 0);
  ChromeTraceWriter w;
  w.add(t);
  const json::Value doc = export_to_json(w);  // parse would throw if broken
  bool seen = false;
  for (const auto& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() == "X") {
      EXPECT_EQ(ev.at("name").as_string(), "kernel \\ \"q\"\n");
      seen = true;
    }
  }
  EXPECT_TRUE(seen);
}

}  // namespace
}  // namespace hs::sim
