#include "sim/stream.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"

namespace hs::sim {
namespace {

KernelSpec simple_kernel(std::string name, double work_ns,
                         std::function<void()> fn = {}) {
  KernelSpec spec;
  spec.name = std::move(name);
  spec.sm_demand = 1.0;
  spec.body = [work_ns, fn](KernelContext& ctx) -> Task {
    co_await ctx.compute(work_ns);
    if (fn) fn();  // "data work" executes at span completion time
  };
  return spec;
}

TEST(Stream, KernelsRunInOrder) {
  Machine m(Topology::dgx_h100(1, 1), CostModel::h100_eos());
  Stream& s = m.create_stream(0, "s0", StreamPriority::kHigh);
  std::vector<std::pair<int, SimTime>> done;
  s.launch(simple_kernel("k1", 100.0, [&] { done.push_back({1, m.engine().now()}); }));
  s.launch(simple_kernel("k2", 50.0, [&] { done.push_back({2, m.engine().now()}); }));
  m.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], (std::pair<int, SimTime>{1, 100}));
  EXPECT_EQ(done[1], (std::pair<int, SimTime>{2, 150}));
  EXPECT_TRUE(s.idle());
}

TEST(Stream, RecordAndWaitOrderAcrossStreams) {
  Machine m(Topology::dgx_h100(1, 1), CostModel::h100_eos());
  Stream& a = m.create_stream(0, "a", StreamPriority::kHigh);
  Stream& b = m.create_stream(0, "b", StreamPriority::kHigh);
  SimTime b_done = -1;
  a.launch(simple_kernel("producer", 200.0));
  auto ev = a.record();
  b.wait(ev);
  b.launch(simple_kernel("consumer", 100.0, [&] { b_done = m.engine().now(); }));
  m.run();
  // Consumer starts only after producer's event: 200 + (shared-device)
  // execution. Both kernels demand the full device but do not overlap.
  EXPECT_EQ(b_done, 300);
  EXPECT_EQ(ev->completed_at(), 200);
}

TEST(Stream, WaitOnCompletedEventIsFree) {
  Machine m(Topology::dgx_h100(1, 1), CostModel::h100_eos());
  Stream& s = m.create_stream(0, "s", StreamPriority::kHigh);
  auto ev = s.make_event();
  ev->complete();
  SimTime done = -1;
  s.wait(ev);
  s.launch(simple_kernel("k", 10.0, [&] { done = m.engine().now(); }));
  m.run();
  EXPECT_EQ(done, 10);
}

TEST(Stream, KernelsOnDifferentStreamsShareTheDevice) {
  Machine m(Topology::dgx_h100(1, 1), CostModel::h100_eos());
  Stream& a = m.create_stream(0, "a", StreamPriority::kHigh);
  Stream& b = m.create_stream(0, "b", StreamPriority::kHigh);
  SimTime a_done = -1, b_done = -1;
  a.launch(simple_kernel("ka", 1000.0, [&] { a_done = m.engine().now(); }));
  b.launch(simple_kernel("kb", 1000.0, [&] { b_done = m.engine().now(); }));
  m.run();
  // Full-demand kernels co-resident => processor sharing doubles both.
  EXPECT_EQ(a_done, 2000);
  EXPECT_EQ(b_done, 2000);
}

TEST(Stream, PriorityTierPreemptsAcrossStreams) {
  Machine m(Topology::dgx_h100(1, 1), CostModel::h100_eos());
  Stream& low = m.create_stream(0, "prune", StreamPriority::kLow);
  Stream& mid = m.create_stream(0, "update", StreamPriority::kMedium);
  SimTime low_done = -1, mid_done = -1;
  low.launch(simple_kernel("prune", 1000.0, [&] { low_done = m.engine().now(); }));
  mid.launch(simple_kernel("reduce", 500.0, [&] { mid_done = m.engine().now(); }));
  m.run();
  // §5.4: the medium-priority reduction preempts the rolling prune.
  EXPECT_EQ(mid_done, 500);
  EXPECT_EQ(low_done, 1500);
}

TEST(Stream, SpawnedBlockGroupsGateKernelCompletion) {
  Machine m(Topology::dgx_h100(1, 1), CostModel::h100_eos());
  Stream& s = m.create_stream(0, "s", StreamPriority::kHigh);
  KernelSpec spec;
  spec.name = "fused";
  spec.sm_demand = 0.2;
  spec.body = [](KernelContext& ctx) -> Task {
    for (int i = 1; i <= 3; ++i) {
      ctx.spawn([](KernelContext& c, double w) -> Task {
        co_await c.compute(w);
      }(ctx, 100.0 * i));
    }
    co_return;
  };
  s.launch(spec);
  SimTime after = -1;
  s.launch(simple_kernel("next", 10.0, [&] { after = m.engine().now(); }));
  m.run();
  // Fused kernel ends when the slowest block group (300 ns) ends.
  EXPECT_EQ(after, 310);
}

TEST(Stream, AsyncOpBlocksFollowingWork) {
  Machine m(Topology::dgx_h100(1, 1), CostModel::h100_eos());
  Stream& s = m.create_stream(0, "s", StreamPriority::kHigh);
  SimTime k_done = -1;
  s.enqueue_async("dma", [&](std::function<void()> done) {
    m.engine().schedule_after(400, std::move(done));
  });
  s.launch(simple_kernel("k", 100.0, [&] { k_done = m.engine().now(); }));
  m.run();
  EXPECT_EQ(k_done, 500);
}

TEST(Stream, TraceRecordsKernelIntervals) {
  Machine m(Topology::dgx_h100(1, 1), CostModel::h100_eos());
  m.trace().set_enabled(true);
  m.trace().set_step(42);
  Stream& s = m.create_stream(0, "nonlocal", StreamPriority::kHigh);
  s.launch(simple_kernel("packX", 250.0));
  m.run();
  ASSERT_EQ(m.trace().records().size(), 1u);
  const TraceRecord& r = m.trace().records()[0];
  EXPECT_EQ(r.name, "packX");
  EXPECT_EQ(r.stream, "nonlocal");
  EXPECT_EQ(r.begin, 0);
  EXPECT_EQ(r.end, 250);
  EXPECT_EQ(r.step, 42);
  EXPECT_EQ(r.device, 0);
}

TEST(Stream, CallbackIsStreamOrdered) {
  Machine m(Topology::dgx_h100(1, 1), CostModel::h100_eos());
  Stream& s = m.create_stream(0, "s", StreamPriority::kHigh);
  SimTime cb_at = -1;
  s.launch(simple_kernel("k", 123.0));
  s.enqueue_callback([&] { cb_at = m.engine().now(); });
  m.run();
  EXPECT_EQ(cb_at, 123);
}

}  // namespace
}  // namespace hs::sim
