// Direct coverage of two later-added device mechanisms: open-ended
// occupancy holds (SM resource sharing of resident comm kernels) and
// per-kernel device-side dispatch overhead (what CUDA graphs shrink).
#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace hs::sim {
namespace {

TEST(DeviceHold, SlowsCoResidentWorkWhileHeld) {
  Engine e;
  Device d(e, 0, 0);
  SimTime work_done = -1;
  Device::SpanId hold = 0;
  e.schedule_at(0, [&] {
    hold = d.begin_hold(0.25, 0);
    d.begin_span(1000.0, 1.0, 0, [&] { work_done = e.now(); });
  });
  // Release the hold at t = 500.
  e.schedule_at(500, [&] { d.end_hold(hold); });
  e.run();
  // While held: demand 1.25 => speed 0.8 => 400 work done by t=500; the
  // remaining 600 at full speed => done at 1100.
  EXPECT_EQ(work_done, 1100);
}

TEST(DeviceHold, HoldAloneNeverCompletes) {
  Engine e;
  Device d(e, 0, 0);
  e.schedule_at(0, [&] { d.begin_hold(0.5, 0); });
  EXPECT_TRUE(e.run_until(1'000'000));
  EXPECT_EQ(d.resident_spans(), 1);  // still resident, not completed
}

TEST(DeviceHold, PriorityTiersApplyToHolds) {
  Engine e;
  Device d(e, 0, 0);
  SimTime low_done = -1;
  Device::SpanId hold = 0;
  e.schedule_at(0, [&] {
    hold = d.begin_hold(1.0, /*priority=*/1);  // high-priority full hold
    d.begin_span(100.0, 1.0, /*priority=*/0, [&] { low_done = e.now(); });
  });
  e.schedule_at(300, [&] { d.end_hold(hold); });
  e.run();
  // Fully starved until the hold releases.
  EXPECT_EQ(low_done, 400);
}

TEST(KernelDispatch, DelaysKernelStart) {
  Machine m(Topology::dgx_h100(1, 1), CostModel::h100_eos());
  m.trace().set_enabled(true);
  Stream& s = m.create_stream(0, "s", StreamPriority::kHigh);
  KernelSpec spec;
  spec.name = "k";
  spec.sm_demand = 1.0;
  spec.dispatch_ns = 700;
  spec.body = [](KernelContext& ctx) -> Task { co_await ctx.compute(100.0); };
  s.launch(std::move(spec));
  m.run();
  ASSERT_EQ(m.trace().records().size(), 1u);
  EXPECT_EQ(m.trace().records()[0].begin, 700);
  EXPECT_EQ(m.trace().records()[0].end, 800);
}

TEST(KernelDispatch, SerializedKernelsPayDispatchEach) {
  Machine m(Topology::dgx_h100(1, 1), CostModel::h100_eos());
  Stream& s = m.create_stream(0, "s", StreamPriority::kHigh);
  SimTime done = -1;
  for (int i = 0; i < 3; ++i) {
    KernelSpec spec;
    spec.name = "k";
    spec.sm_demand = 1.0;
    spec.dispatch_ns = 500;
    auto* engine = &m.engine();
    spec.body = [](KernelContext& ctx) -> Task { co_await ctx.compute(100.0); };
    spec.on_complete = [&done, engine] { done = engine->now(); };
    s.launch(std::move(spec));
  }
  m.run();
  EXPECT_EQ(done, 3 * (500 + 100));
}

TEST(KernelDispatch, ZeroDispatchStartsImmediately) {
  Machine m(Topology::dgx_h100(1, 1), CostModel::h100_eos());
  m.trace().set_enabled(true);
  Stream& s = m.create_stream(0, "s", StreamPriority::kHigh);
  KernelSpec spec;
  spec.name = "k";
  spec.sm_demand = 1.0;
  spec.body = [](KernelContext& ctx) -> Task { co_await ctx.compute(50.0); };
  s.launch(std::move(spec));
  m.run();
  EXPECT_EQ(m.trace().records()[0].begin, 0);
}

}  // namespace
}  // namespace hs::sim
