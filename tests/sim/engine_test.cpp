#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace hs::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 30);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SameTimeEventsRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, CallbacksCanScheduleMore) {
  Engine e;
  int fired = 0;
  e.schedule_at(1, [&] {
    ++fired;
    e.schedule_after(5, [&] { ++fired; });
  });
  EXPECT_EQ(e.run(), 6);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, ScheduleNowRunsAfterQueuedSameTime) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(0, [&] {
    order.push_back(1);
    e.schedule_now([&] { order.push_back(3); });
  });
  e.schedule_at(0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(100, [&] { ++fired; });
  EXPECT_FALSE(e.run_until(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 10);
  EXPECT_TRUE(e.run_until(200));
  EXPECT_EQ(fired, 2);
}

TEST(Engine, CountsProcessedEvents) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 5u);
}

TEST(Engine, RecordedErrorIsRethrownByRun) {
  Engine e;
  e.schedule_at(1, [&] {
    e.record_error(std::make_exception_ptr(std::runtime_error("boom")));
  });
  e.schedule_at(2, [] { FAIL() << "must not run after error"; });
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Engine, SchedulingIntoThePastThrows) {
  // Regression: this used to be assert-only, silently corrupting causality
  // in builds without assertions.
  Engine e;
  e.schedule_at(100, [] {});
  e.run();
  EXPECT_EQ(e.now(), 100);
  EXPECT_THROW(e.schedule_at(50, [] {}), std::invalid_argument);
  // Present/future times still fine.
  EXPECT_NO_THROW(e.schedule_at(100, [] {}));
  EXPECT_NO_THROW(e.schedule_at(200, [] {}));
}

TEST(Engine, PastScheduleInsideCallbackIsRoutedThroughRecordError) {
  Engine e;
  bool later_ran = false;
  e.schedule_at(10, [&] { e.schedule_at(5, [] {}); });
  e.schedule_at(20, [&] { later_ran = true; });
  EXPECT_THROW(e.run(), std::invalid_argument);
  EXPECT_FALSE(later_ran);  // simulation stopped at the first error
}

TEST(Engine, CallbackSchedulingManyMoreKeepsDeterministicOrder) {
  // Exercises heap rebalancing around pops now that the queue is a plain
  // vector heap (the const_cast-move-out-of-top hack is gone).
  Engine e;
  std::vector<std::pair<SimTime, int>> order;
  for (int i = 0; i < 8; ++i) {
    e.schedule_at(10 * (i + 1), [&order, &e, i] {
      order.push_back({e.now(), i});
      e.schedule_after(5, [&order, &e, i] { order.push_back({e.now(), 100 + i}); });
      e.schedule_after(0, [&order, &e, i] { order.push_back({e.now(), 200 + i}); });
    });
  }
  e.run();
  ASSERT_EQ(order.size(), 24u);
  for (std::size_t k = 1; k < order.size(); ++k) {
    EXPECT_LE(order[k - 1].first, order[k].first);
  }
  // Same-time FIFO: the 200-series event runs right after its scheduler.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(3 * i)].second, i);
    EXPECT_EQ(order[static_cast<std::size_t>(3 * i + 1)].second, 200 + i);
    EXPECT_EQ(order[static_cast<std::size_t>(3 * i + 2)].second, 100 + i);
  }
}

TEST(Engine, IdleReflectsQueueState) {
  Engine e;
  EXPECT_TRUE(e.idle());
  e.schedule_at(1, [] {});
  EXPECT_FALSE(e.idle());
  e.run();
  EXPECT_TRUE(e.idle());
}

}  // namespace
}  // namespace hs::sim
