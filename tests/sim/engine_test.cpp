#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace hs::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 30);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SameTimeEventsRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, CallbacksCanScheduleMore) {
  Engine e;
  int fired = 0;
  e.schedule_at(1, [&] {
    ++fired;
    e.schedule_after(5, [&] { ++fired; });
  });
  EXPECT_EQ(e.run(), 6);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, ScheduleNowRunsAfterQueuedSameTime) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(0, [&] {
    order.push_back(1);
    e.schedule_now([&] { order.push_back(3); });
  });
  e.schedule_at(0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(100, [&] { ++fired; });
  EXPECT_FALSE(e.run_until(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 10);
  EXPECT_TRUE(e.run_until(200));
  EXPECT_EQ(fired, 2);
}

TEST(Engine, CountsProcessedEvents) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 5u);
}

TEST(Engine, RecordedErrorIsRethrownByRun) {
  Engine e;
  e.schedule_at(1, [&] {
    e.record_error(std::make_exception_ptr(std::runtime_error("boom")));
  });
  e.schedule_at(2, [] { FAIL() << "must not run after error"; });
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Engine, IdleReflectsQueueState) {
  Engine e;
  EXPECT_TRUE(e.idle());
  e.schedule_at(1, [] {});
  EXPECT_FALSE(e.idle());
  e.run();
  EXPECT_TRUE(e.idle());
}

}  // namespace
}  // namespace hs::sim
