#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/trace.hpp"

namespace hs::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 30);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SameTimeEventsRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, CallbacksCanScheduleMore) {
  Engine e;
  int fired = 0;
  e.schedule_at(1, [&] {
    ++fired;
    e.schedule_after(5, [&] { ++fired; });
  });
  EXPECT_EQ(e.run(), 6);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, ScheduleNowRunsAfterQueuedSameTime) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(0, [&] {
    order.push_back(1);
    e.schedule_now([&] { order.push_back(3); });
  });
  e.schedule_at(0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(100, [&] { ++fired; });
  EXPECT_FALSE(e.run_until(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 10);
  EXPECT_TRUE(e.run_until(200));
  EXPECT_EQ(fired, 2);
}

TEST(Engine, CountsProcessedEvents) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 5u);
}

TEST(Engine, RecordedErrorIsRethrownByRun) {
  Engine e;
  e.schedule_at(1, [&] {
    e.record_error(std::make_exception_ptr(std::runtime_error("boom")));
  });
  e.schedule_at(2, [] { FAIL() << "must not run after error"; });
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Engine, SchedulingIntoThePastThrows) {
  // Regression: this used to be assert-only, silently corrupting causality
  // in builds without assertions.
  Engine e;
  e.schedule_at(100, [] {});
  e.run();
  EXPECT_EQ(e.now(), 100);
  EXPECT_THROW(e.schedule_at(50, [] {}), std::invalid_argument);
  // Present/future times still fine.
  EXPECT_NO_THROW(e.schedule_at(100, [] {}));
  EXPECT_NO_THROW(e.schedule_at(200, [] {}));
}

TEST(Engine, PastScheduleInsideCallbackIsRoutedThroughRecordError) {
  Engine e;
  bool later_ran = false;
  e.schedule_at(10, [&] { e.schedule_at(5, [] {}); });
  e.schedule_at(20, [&] { later_ran = true; });
  EXPECT_THROW(e.run(), std::invalid_argument);
  EXPECT_FALSE(later_ran);  // simulation stopped at the first error
}

TEST(Engine, CallbackSchedulingManyMoreKeepsDeterministicOrder) {
  // Exercises heap rebalancing around pops now that the queue is a plain
  // vector heap (the const_cast-move-out-of-top hack is gone).
  Engine e;
  std::vector<std::pair<SimTime, int>> order;
  for (int i = 0; i < 8; ++i) {
    e.schedule_at(10 * (i + 1), [&order, &e, i] {
      order.push_back({e.now(), i});
      e.schedule_after(5, [&order, &e, i] { order.push_back({e.now(), 100 + i}); });
      e.schedule_after(0, [&order, &e, i] { order.push_back({e.now(), 200 + i}); });
    });
  }
  e.run();
  ASSERT_EQ(order.size(), 24u);
  for (std::size_t k = 1; k < order.size(); ++k) {
    EXPECT_LE(order[k - 1].first, order[k].first);
  }
  // Same-time FIFO: the 200-series event runs right after its scheduler.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(3 * i)].second, i);
    EXPECT_EQ(order[static_cast<std::size_t>(3 * i + 1)].second, 200 + i);
    EXPECT_EQ(order[static_cast<std::size_t>(3 * i + 2)].second, 100 + i);
  }
}

TEST(Engine, IdleReflectsQueueState) {
  Engine e;
  EXPECT_TRUE(e.idle());
  e.schedule_at(1, [] {});
  EXPECT_FALSE(e.idle());
  e.run();
  EXPECT_TRUE(e.idle());
}

// The queue is two-level: future events sit in the heap, events scheduled
// at the current time go to a FIFO bucket. Same-time events must still run
// in global schedule (seq) order across BOTH levels: heap entries at time t
// were scheduled before now reached t, so they all precede any bucket
// entry added while events at t are running.
TEST(Engine, SameTimeFifoAcrossBucketAndHeap) {
  Engine e;
  std::vector<int> order;
  // A and B land in the heap (scheduled while now=0 < 5).
  e.schedule_at(5, [&] {
    order.push_back(1);
    e.schedule_now([&] { order.push_back(3); });  // bucket
  });
  e.schedule_at(5, [&] {
    order.push_back(2);
    e.schedule_now([&] { order.push_back(4); });  // bucket
  });
  e.run();
  EXPECT_EQ(e.now(), 5);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Engine, ScheduleNowChainsStayAtCurrentTimeInFifoOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(7, [&] {
    order.push_back(0);
    e.schedule_now([&] {
      order.push_back(1);
      e.schedule_now([&] { order.push_back(3); });
    });
    e.schedule_now([&] { order.push_back(2); });
  });
  e.run();
  EXPECT_EQ(e.now(), 7);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// Regression: run_until used to leave an error recorded mid-run sitting in
// the engine when stepping stopped (horizon or drained queue) — the caller
// only learned about it on the *next* run()/run_until(). It must surface
// when the call that observed it returns.
TEST(Engine, RunUntilSurfacesRecordedErrorAtReturn) {
  Engine e;
  e.schedule_at(10, [] { throw std::runtime_error("boom"); });
  e.schedule_at(100, [] { FAIL() << "must not run after error"; });
  EXPECT_THROW(e.run_until(50), std::runtime_error);
  // The error was consumed by the rethrow; the engine can keep going.
  EXPECT_NO_THROW(e.run_until(60));
}

TEST(Engine, RunUntilSurfacesErrorRecordedBeforeStepping) {
  Engine e;
  e.record_error(std::make_exception_ptr(std::runtime_error("early")));
  EXPECT_THROW(e.run_until(1000), std::runtime_error);
}

// Forces slot-pool growth while non-memcpy-relocatable callbacks (inline
// captures with a non-trivial destructor) are live, exercising the
// element-wise relocation path in grow_slots.
TEST(Engine, PoolGrowthPreservesNonRelocatableCallbacks) {
  Engine e;
  auto counter = std::make_shared<int>(0);
  constexpr int kEvents = 3000;  // > initial pool capacity (1024)
  for (int i = 0; i < kEvents; ++i) {
    e.schedule_at(i + 1, [counter] { ++*counter; });
  }
  EXPECT_GT(counter.use_count(), kEvents);
  e.run();
  EXPECT_EQ(*counter, kEvents);
  EXPECT_EQ(counter.use_count(), 1);
}

// Same growth scenario, all-relocatable captures (the realloc fast path).
TEST(Engine, PoolGrowthPreservesTriviallyCopyableCallbacks) {
  Engine e;
  long long sum = 0;
  constexpr int kEvents = 3000;
  for (int i = 0; i < kEvents; ++i) {
    e.schedule_at(i + 1, [&sum, i] { sum += i; });
  }
  e.run();
  EXPECT_EQ(sum, static_cast<long long>(kEvents) * (kEvents - 1) / 2);
}

// The ambient cause must follow events through the same-time FIFO bucket,
// not just the heap.
TEST(Engine, CausePropagatesThroughSameTimeBucket) {
  Trace t;
  t.set_enabled(true);
  Engine e;
  e.bind_trace(&t);
  std::uint64_t seen = 0;
  e.schedule_at(10, [&] {
    e.schedule_with_cause(e.now(), 77, [&] { seen = t.cause(); });
  });
  e.run();
  EXPECT_EQ(seen, 77u);
  EXPECT_EQ(t.cause(), 0u);
}

}  // namespace
}  // namespace hs::sim
