#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/engine.hpp"
#include "util/logging.hpp"

namespace hs::sim {
namespace {

TEST(Trace, DisabledRecordReturnsInvalidSpan) {
  Trace t;  // disabled by default
  EXPECT_EQ(t.record(0, "s", "k", 0, 10), 0u);
  EXPECT_TRUE(t.records().empty());
  t.add_edge(1, 2, EdgeKind::StreamOrder);
  EXPECT_TRUE(t.edges().empty());
}

TEST(Trace, SpanIdsAreUniqueAndMonotonic) {
  Trace t;
  t.set_enabled(true);
  const auto a = t.record(0, "s", "k1", 0, 10);
  const auto b = t.record(0, "s", "k2", 10, 20);
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, a);
  EXPECT_EQ(t.records()[0].span, a);
  EXPECT_EQ(t.records()[1].span, b);
}

TEST(Trace, EdgesDropInvalidAndSelfEndpoints) {
  Trace t;
  t.set_enabled(true);
  const auto a = t.record(0, "s", "k1", 0, 10);
  const auto b = t.record(0, "s", "k2", 10, 20);
  t.add_edge(0, b, EdgeKind::StreamOrder);  // invalid src
  t.add_edge(a, 0, EdgeKind::StreamOrder);  // invalid dst
  t.add_edge(a, a, EdgeKind::StreamOrder);  // self edge
  EXPECT_TRUE(t.edges().empty());
  t.add_edge(a, b, EdgeKind::SignalSetWait);
  ASSERT_EQ(t.edges().size(), 1u);
  EXPECT_EQ(t.edges()[0].src, a);
  EXPECT_EQ(t.edges()[0].dst, b);
  EXPECT_EQ(t.edges()[0].kind, EdgeKind::SignalSetWait);
}

TEST(Trace, ClearResetsStepCauseAndGraphButNotSpanIds) {
  Trace t;
  t.set_enabled(true);
  t.set_step(7);
  t.set_cause(42);
  const auto a = t.record(0, "s", "k", 0, 10);
  const auto b = t.record(0, "s", "k2", 10, 20);
  t.add_edge(a, b, EdgeKind::StreamOrder);
  t.clear();
  EXPECT_TRUE(t.records().empty());
  EXPECT_TRUE(t.edges().empty());
  EXPECT_EQ(t.step(), -1);  // new records must not inherit the old step
  EXPECT_EQ(t.cause(), 0u);
  const auto c = t.record(0, "s", "k3", 0, 10);
  EXPECT_GT(c, b);  // span ids stay unique across clears
  EXPECT_EQ(t.records()[0].step, -1);
}

TEST(Trace, SoftCapWarnsOnceAndKeepsRecording) {
  Trace t;
  t.set_enabled(true);
  t.set_soft_cap(2);
  std::ostringstream log;
  util::set_log_sink(&log);
  const util::LogLevel old_level = util::log_level();
  util::set_log_level(util::LogLevel::Warn);
  t.record(0, "s", "k1", 0, 1);
  t.record(0, "s", "k2", 1, 2);
  EXPECT_EQ(log.str().find("soft cap"), std::string::npos);
  t.record(0, "s", "k3", 2, 3);  // crosses the cap: one warning
  EXPECT_NE(log.str().find("soft cap"), std::string::npos);
  const auto once = log.str().size();
  t.record(0, "s", "k4", 3, 4);  // no second warning
  EXPECT_EQ(log.str().size(), once);
  EXPECT_EQ(t.records().size(), 4u);  // records past the cap still land
  // clear() re-arms the warning for the next run.
  t.clear();
  t.record(0, "s", "k1", 0, 1);
  t.record(0, "s", "k2", 1, 2);
  t.record(0, "s", "k3", 2, 3);
  EXPECT_GT(log.str().size(), once);
  util::set_log_sink(nullptr);
  util::set_log_level(old_level);
}

TEST(Trace, ReserveDoesNotChangeContents) {
  Trace t;
  t.set_enabled(true);
  t.record(0, "s", "k", 0, 10);
  t.reserve(1000);
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].name, "k");
}

TEST(Trace, EngineScopesAmbientCauseToScheduledEvents) {
  Engine engine;
  Trace t;
  t.set_enabled(true);
  engine.bind_trace(&t);
  const auto producer = t.record(0, "s", "xfer", 0, 100, -1,
                                 SpanKind::Transfer);
  std::uint64_t seen_inside = 99;
  std::uint64_t seen_plain = 99;
  engine.schedule_with_cause(100, producer,
                             [&] { seen_inside = t.cause(); });
  engine.schedule_at(200, [&] { seen_plain = t.cause(); });
  engine.run();
  EXPECT_EQ(seen_inside, producer);  // ambient cause inside the delivery
  EXPECT_EQ(seen_plain, 0u);         // and cleared outside it
  EXPECT_EQ(t.cause(), 0u);
}

}  // namespace
}  // namespace hs::sim
