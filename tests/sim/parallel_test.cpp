// ParallelDriver unit tests: the conservative window protocol itself,
// exercised directly on bare engines (no devices/fabric). The key claims:
// the worker count never changes observable behaviour, cross-lane messages
// are injected in a deterministic total order, and protocol violations
// (posting inside the lookahead) fail loudly.
#include "sim/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace hs::sim {
namespace {

// One observable action: (time, lane, tag). Lanes log into their own
// vector (lane-local, no synchronization needed); runs are compared on the
// deterministically merged view.
using LogEntry = std::tuple<SimTime, int, int>;

struct Scenario {
  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<std::vector<LogEntry>> logs;  // per lane
  std::unique_ptr<ParallelDriver> driver;

  std::vector<LogEntry> merged() const {
    std::vector<LogEntry> all;
    for (const auto& lane : logs) {
      all.insert(all.end(), lane.begin(), lane.end());
    }
    std::sort(all.begin(), all.end());
    return all;
  }
};

constexpr SimTime kLookahead = 100;

// A ring of lanes passing a token: lane d fires at t, logs, and posts the
// token onward to lane (d+1)%n arriving at t + lookahead, for `hops` hops.
// Several tokens in flight at once make windows carry real concurrency.
std::unique_ptr<Scenario> make_ring(int lanes, int workers, int hops,
                                    int tokens) {
  auto sc = std::make_unique<Scenario>();
  sc->logs.resize(static_cast<std::size_t>(lanes));
  std::vector<Engine*> raw;
  for (int d = 0; d < lanes; ++d) {
    sc->engines.push_back(std::make_unique<Engine>());
    raw.push_back(sc->engines.back().get());
  }
  sc->driver =
      std::make_unique<ParallelDriver>(raw, kLookahead, workers);

  struct Hop {
    Scenario* sc;
    int lanes;
    int lane;
    int token;
    int remaining;
    void operator()() const {
      Engine& eng = *sc->engines[static_cast<std::size_t>(lane)];
      sc->logs[static_cast<std::size_t>(lane)].emplace_back(eng.now(), lane,
                                                            token);
      if (remaining == 0) return;
      const int next = (lane + 1) % lanes;
      sc->driver->post(lane, next, eng.now() + kLookahead, 0,
                       Hop{sc, lanes, next, token, remaining - 1});
    }
  };

  for (int t = 0; t < tokens; ++t) {
    const int lane = t % lanes;
    // Staggered starts so lanes begin at different clocks.
    sc->engines[static_cast<std::size_t>(lane)]->schedule_at(
        t * 7, Hop{sc.get(), lanes, lane, t, hops});
  }
  return sc;
}

TEST(ParallelDriverTest, TokenRingDeliversEveryHop) {
  auto sc = make_ring(4, 2, 10, 4);
  const SimTime end = sc->driver->run();
  // 4 tokens x 10 cross-lane hops.
  EXPECT_EQ(sc->driver->messages_delivered(), 40u);
  EXPECT_GT(sc->driver->windows_run(), 0u);
  EXPECT_EQ(sc->merged().size(), 4u * 11u);  // initial firing + 10 hops
  // Final clock: last token starts at 21, 10 hops of lookahead each.
  EXPECT_EQ(end, 21 + 10 * kLookahead);
}

TEST(ParallelDriverTest, WorkerCountIsUnobservable) {
  auto oracle = make_ring(4, 1, 12, 6);
  oracle->driver->run();
  const auto expected = oracle->merged();
  const auto messages = oracle->driver->messages_delivered();
  const auto windows = oracle->driver->windows_run();

  for (int workers : {2, 3, 4, 8}) {
    auto sc = make_ring(4, workers, 12, 6);
    sc->driver->run();
    EXPECT_EQ(sc->merged(), expected) << "workers=" << workers;
    EXPECT_EQ(sc->driver->messages_delivered(), messages)
        << "workers=" << workers;
    EXPECT_EQ(sc->driver->windows_run(), windows) << "workers=" << workers;
  }
}

TEST(ParallelDriverTest, WorkersClampedToLaneCount) {
  auto sc = make_ring(2, 64, 4, 2);
  EXPECT_EQ(sc->driver->workers(), 2);
  sc->driver->run();
  EXPECT_EQ(sc->driver->messages_delivered(), 8u);
}

TEST(ParallelDriverTest, SingleLaneRunsToCompletionWithoutMessages) {
  auto sc = make_ring(1, 1, 0, 3);
  sc->driver->run();
  EXPECT_EQ(sc->driver->messages_delivered(), 0u);
  EXPECT_EQ(sc->merged().size(), 3u);
}

TEST(ParallelDriverTest, LookaheadBelowOneRejected) {
  Engine eng;
  std::vector<Engine*> raw{&eng};
  EXPECT_THROW(ParallelDriver(raw, 0, 1), std::invalid_argument);
}

TEST(ParallelDriverTest, PostInsideLookaheadThrows) {
  auto sc = std::make_unique<Scenario>();
  sc->logs.resize(2);
  for (int d = 0; d < 2; ++d) sc->engines.push_back(std::make_unique<Engine>());
  std::vector<Engine*> raw{sc->engines[0].get(), sc->engines[1].get()};
  sc->driver = std::make_unique<ParallelDriver>(raw, kLookahead, 1);
  auto* scp = sc.get();
  sc->engines[0]->schedule_at(5, [scp] {
    // Arrival inside the current window: a lookahead violation.
    scp->driver->post(0, 1, scp->engines[0]->now() + 1, 0, [] {});
  });
  EXPECT_THROW(sc->driver->run(), std::logic_error);
}

TEST(ParallelDriverTest, LowestLaneErrorWinsDeterministically) {
  for (int workers : {1, 2, 4}) {
    auto sc = std::make_unique<Scenario>();
    sc->logs.resize(3);
    std::vector<Engine*> raw;
    for (int d = 0; d < 3; ++d) {
      sc->engines.push_back(std::make_unique<Engine>());
      raw.push_back(sc->engines.back().get());
    }
    sc->driver = std::make_unique<ParallelDriver>(raw, kLookahead, workers);
    // Two lanes fail in the same window; the rethrow must pick lane 1 (the
    // lowest failing index) no matter which thread finished first.
    sc->engines[1]->schedule_at(10, [] {
      throw std::runtime_error("lane1 boom");
    });
    sc->engines[2]->schedule_at(10, [] {
      throw std::runtime_error("lane2 boom");
    });
    try {
      sc->driver->run();
      FAIL() << "expected error, workers=" << workers;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "lane1 boom") << "workers=" << workers;
    }
  }
}

TEST(ParallelDriverTest, MessagesInjectInDeterministicTotalOrder) {
  // Two lanes post to lane 2 at the same arrival time; the injected order
  // must be (arrival, sent, src_lane, seq) — i.e. lane 0's message first —
  // regardless of worker interleaving. Observable through the log order at
  // the shared arrival tick.
  for (int workers : {1, 2, 3}) {
    auto sc = std::make_unique<Scenario>();
    sc->logs.resize(3);
    std::vector<Engine*> raw;
    for (int d = 0; d < 3; ++d) {
      sc->engines.push_back(std::make_unique<Engine>());
      raw.push_back(sc->engines.back().get());
    }
    sc->driver = std::make_unique<ParallelDriver>(raw, kLookahead, workers);
    auto* scp = sc.get();
    for (int src : {0, 1}) {
      sc->engines[static_cast<std::size_t>(src)]->schedule_at(
          0, [scp, src] {
            scp->driver->post(src, 2, kLookahead, 0, [scp, src] {
              auto& log = scp->logs[2];
              log.emplace_back(scp->engines[2]->now(), 2,
                               100 + src * (static_cast<int>(log.size()) + 1));
            });
          });
    }
    sc->driver->run();
    ASSERT_EQ(sc->logs[2].size(), 2u) << "workers=" << workers;
    // Lane 0's message ran first: its tag was computed with log.size()==0.
    EXPECT_EQ(std::get<2>(sc->logs[2][0]), 100) << "workers=" << workers;
    EXPECT_EQ(std::get<2>(sc->logs[2][1]), 101 + 1) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace hs::sim
