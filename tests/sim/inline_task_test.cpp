#include "sim/inline_task.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

namespace hs::sim {
namespace {

TEST(InlineTask, DefaultConstructedIsEmpty) {
  InlineTask t;
  EXPECT_FALSE(static_cast<bool>(t));
  InlineTask n(nullptr);
  EXPECT_FALSE(static_cast<bool>(n));
}

TEST(InlineTask, SmallCaptureStoresInline) {
  int hits = 0;
  InlineTask t([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(t));
  EXPECT_TRUE(t.is_inline());
  t();
  t();
  EXPECT_EQ(hits, 2);
}

TEST(InlineTask, CaptureAtInlineLimitStaysInline) {
  std::array<std::int64_t, 5> payload{};  // 40 bytes + 8-byte reference
  payload.back() = 42;
  std::int64_t out = 0;
  auto fn = [payload, &out]() mutable { out = payload.back(); };
  static_assert(sizeof(fn) == InlineTask::kInlineBytes);
  InlineTask t(std::move(fn));
  EXPECT_TRUE(t.is_inline());
  t();
  EXPECT_EQ(out, 42);
}

TEST(InlineTask, LargeCaptureUsesSlabAndRecyclesBlocks) {
  std::array<std::int64_t, 12> big{};  // 96 bytes > kInlineBytes
  big[11] = 7;
  std::int64_t out = 0;
  {
    InlineTask t([big, &out] { out = big[11]; });
    EXPECT_TRUE(static_cast<bool>(t));
    EXPECT_FALSE(t.is_inline());
    t();
  }
  EXPECT_EQ(out, 7);
  // Destroying the task returned its block to the active slab's free list;
  // the next overflow capture reuses it rather than growing the slab.
  const std::size_t free_before = detail::TaskSlab::free_blocks();
  {
    InlineTask t([big, &out] { out = big[0]; });
    EXPECT_EQ(detail::TaskSlab::free_blocks(), free_before - 1);
  }
  EXPECT_EQ(detail::TaskSlab::free_blocks(), free_before);
}

TEST(InlineTask, SlabBlocksReturnToOwningSlab) {
  std::array<std::int64_t, 12> big{};  // 96 bytes > kInlineBytes
  detail::TaskSlab slab_a;
  detail::TaskSlab slab_b;
  InlineTask t;
  {
    detail::TaskSlab::Scope scope(&slab_a);
    t = [big] { (void)big; };
    EXPECT_FALSE(t.is_inline());
    EXPECT_EQ(detail::TaskSlab::free_blocks(),
              detail::TaskSlab::kBlocksPerChunk - 1);
  }
  // Destroying the capture under a *different* slab context must return
  // the block to the slab that carved it, not the active one — the bug
  // this guards against is a task allocated on one engine lane and
  // destroyed on another corrupting an unrelated free list.
  {
    detail::TaskSlab::Scope scope(&slab_b);
    t = InlineTask();
  }
  EXPECT_EQ(slab_a.free_block_count(), detail::TaskSlab::kBlocksPerChunk);
  EXPECT_EQ(slab_b.free_block_count(), 0u);
}

TEST(InlineTask, ScopeNestsAndRestores) {
  detail::TaskSlab slab;
  detail::TaskSlab& fb = detail::TaskSlab::fallback();
  const std::size_t fb_free = fb.free_block_count();
  {
    detail::TaskSlab::Scope scope(&slab);
    std::array<std::int64_t, 12> big{};
    InlineTask t([big] { (void)big; });
    EXPECT_EQ(slab.free_block_count(),
              detail::TaskSlab::kBlocksPerChunk - 1);
  }
  // Outside the scope the fallback slab is active again and untouched.
  EXPECT_EQ(fb.free_block_count(), fb_free);
  EXPECT_EQ(slab.free_block_count(), detail::TaskSlab::kBlocksPerChunk);
}

TEST(InlineTask, MoveTransfersInlineCapture) {
  int hits = 0;
  InlineTask a([&hits] { ++hits; });
  InlineTask b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: inspecting moved-from
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineTask, MoveTransfersNonTrivialCapture) {
  auto flag = std::make_shared<int>(0);
  InlineTask a([flag] { ++*flag; });
  EXPECT_EQ(flag.use_count(), 2);
  InlineTask b(std::move(a));
  EXPECT_EQ(flag.use_count(), 2);  // exactly one live copy after the move
  b();
  EXPECT_EQ(*flag, 1);
}

TEST(InlineTask, MoveAssignDestroysPreviousCapture) {
  auto old_cap = std::make_shared<int>(0);
  auto new_cap = std::make_shared<int>(0);
  InlineTask t([old_cap] {});
  InlineTask src([new_cap] { ++*new_cap; });
  t = std::move(src);
  EXPECT_EQ(old_cap.use_count(), 1);  // previous capture released
  t();
  EXPECT_EQ(*new_cap, 1);
}

TEST(InlineTask, DestructorReleasesCapture) {
  auto flag = std::make_shared<int>(0);
  {
    InlineTask t([flag] {});
    EXPECT_EQ(flag.use_count(), 2);
  }
  EXPECT_EQ(flag.use_count(), 1);
}

TEST(InlineTask, InPlaceAssignFromCallableReplacesCapture) {
  int first = 0;
  int second = 0;
  InlineTask t([&first] { ++first; });
  t = [&second] { ++second; };  // the engine's slot-pool assignment path
  t();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(InlineTask, AcceptsMovedInStdFunction) {
  int hits = 0;
  std::function<void()> f = [&hits] { ++hits; };
  InlineTask t(std::move(f));
  t();
  EXPECT_EQ(hits, 1);
}

TEST(InlineTask, MemcpyRelocatableClassification) {
  InlineTask empty;
  EXPECT_TRUE(empty.memcpy_relocatable());

  int x = 0;
  InlineTask trivial([&x] { ++x; });  // trivially-copyable inline capture
  EXPECT_TRUE(trivial.memcpy_relocatable());

  auto sp = std::make_shared<int>(0);
  InlineTask nontrivial([sp] {});  // inline but needs its manager on moves
  EXPECT_TRUE(nontrivial.is_inline());
  EXPECT_FALSE(nontrivial.memcpy_relocatable());

  std::array<std::int64_t, 12> big{};
  InlineTask slab([big] { (void)big; });  // slab pointer: relocates by copy
  EXPECT_FALSE(slab.is_inline());
  EXPECT_TRUE(slab.memcpy_relocatable());

  // Compile-time classification matches the runtime one.
  auto trivial_fn = [&x] { ++x; };
  auto nontrivial_fn = [sp] {};
  auto slab_fn = [big] { (void)big; };
  static_assert(
      InlineTask::capture_memcpy_relocatable<decltype(trivial_fn)>());
  static_assert(
      !InlineTask::capture_memcpy_relocatable<decltype(nontrivial_fn)>());
  static_assert(InlineTask::capture_memcpy_relocatable<decltype(slab_fn)>());
}

TEST(InlineTask, MovedFromTaskCanBeReassignedAndInvoked) {
  int hits = 0;
  InlineTask a([&hits] { ++hits; });
  InlineTask b(std::move(a));
  a = [&hits] { hits += 10; };
  a();
  b();
  EXPECT_EQ(hits, 11);
}

}  // namespace
}  // namespace hs::sim
