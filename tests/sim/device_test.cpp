#include "sim/device.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hs::sim {
namespace {

TEST(Device, SingleSpanRunsAtFullSpeed) {
  Engine e;
  Device d(e, 0, 0);
  SimTime done_at = -1;
  e.schedule_at(0, [&] {
    d.begin_span(1000.0, 0.5, 0, [&] { done_at = e.now(); });
  });
  e.run();
  EXPECT_EQ(done_at, 1000);
}

TEST(Device, UndersubscribedSpansDoNotSlowEachOther) {
  Engine e;
  Device d(e, 0, 0);
  SimTime a = -1, b = -1;
  e.schedule_at(0, [&] {
    d.begin_span(1000.0, 0.4, 0, [&] { a = e.now(); });
    d.begin_span(2000.0, 0.4, 0, [&] { b = e.now(); });
  });
  e.run();
  EXPECT_EQ(a, 1000);
  EXPECT_EQ(b, 2000);
}

TEST(Device, OversubscriptionStretchesProportionally) {
  Engine e;
  Device d(e, 0, 0);
  SimTime a = -1, b = -1;
  e.schedule_at(0, [&] {
    // Two spans each demanding 100% of the device: both run at half speed.
    d.begin_span(1000.0, 1.0, 0, [&] { a = e.now(); });
    d.begin_span(1000.0, 1.0, 0, [&] { b = e.now(); });
  });
  e.run();
  EXPECT_EQ(a, 2000);
  EXPECT_EQ(b, 2000);
}

TEST(Device, LateArrivalSlowsRemainderOnly) {
  Engine e;
  Device d(e, 0, 0);
  SimTime a = -1, b = -1;
  e.schedule_at(0, [&] {
    d.begin_span(1000.0, 1.0, 0, [&] { a = e.now(); });
  });
  // Second full-demand span arrives halfway through the first.
  e.schedule_at(500, [&] {
    d.begin_span(1000.0, 1.0, 0, [&] { b = e.now(); });
  });
  e.run();
  // First span: 500 ns at speed 1 (500 work) + 500 work at speed 1/2 =>
  // finishes at 500 + 1000 = 1500. Then second has 500 work left at full
  // speed => 1500 + 500 = 2000... but it did 500 work in [500,1500] at 1/2.
  EXPECT_EQ(a, 1500);
  EXPECT_EQ(b, 2000);
}

TEST(Device, HighPriorityPreemptsLow) {
  Engine e;
  Device d(e, 0, 0);
  SimTime low_done = -1, high_done = -1;
  e.schedule_at(0, [&] {
    d.begin_span(1000.0, 1.0, /*priority=*/0, [&] { low_done = e.now(); });
    d.begin_span(1000.0, 1.0, /*priority=*/1, [&] { high_done = e.now(); });
  });
  e.run();
  // High priority takes the whole device; low is starved until it finishes.
  EXPECT_EQ(high_done, 1000);
  EXPECT_EQ(low_done, 2000);
}

TEST(Device, PartialDemandLeavesRoomForLowPriority) {
  Engine e;
  Device d(e, 0, 0);
  SimTime low_done = -1, high_done = -1;
  e.schedule_at(0, [&] {
    d.begin_span(1000.0, 0.25, 1, [&] { high_done = e.now(); });
    d.begin_span(750.0, 1.0, 0, [&] { low_done = e.now(); });
  });
  e.run();
  EXPECT_EQ(high_done, 1000);
  // Low gets 0.75 of its demand while high is resident: 750 work at 0.75
  // speed = 1000 ns => both finish at 1000.
  EXPECT_EQ(low_done, 1000);
}

TEST(Device, CommKernelInflatesLocalKernel) {
  // The paper's §6.3 observation: a comm kernel demanding ~12% of SMs
  // stretches an SM-saturating local kernel by that share.
  Engine e;
  Device d(e, 0, 0);
  SimTime local_done = -1;
  e.schedule_at(0, [&] {
    d.begin_span(100000.0, 0.95, 0, [&] { local_done = e.now(); });
    d.begin_span(800000.0, 0.12, 0, [] {});  // long-lived comm span
  });
  e.run_until(300000);
  // demand sum 1.07 > 1 => speed 1/1.07 => ~107000 ns.
  EXPECT_NEAR(static_cast<double>(local_done), 107000.0, 200.0);
}

TEST(Device, ZeroWorkSpanCompletesImmediately) {
  Engine e;
  Device d(e, 0, 0);
  bool done = false;
  e.schedule_at(5, [&] { d.begin_span(0.0, 0.5, 0, [&] { done = true; }); });
  e.run();
  EXPECT_TRUE(done);
}

TEST(Device, ResidentDemandTracksSpans) {
  Engine e;
  Device d(e, 0, 0);
  e.schedule_at(0, [&] {
    d.begin_span(100.0, 0.3, 0, [] {});
    d.begin_span(100.0, 0.4, 0, [] {});
    EXPECT_NEAR(d.resident_demand(), 0.7, 1e-12);
    EXPECT_EQ(d.resident_spans(), 2);
  });
  e.run();
  EXPECT_EQ(d.resident_spans(), 0);
}

TEST(Device, CallbackCanStartNewSpan) {
  Engine e;
  Device d(e, 0, 0);
  SimTime second_done = -1;
  e.schedule_at(0, [&] {
    d.begin_span(100.0, 1.0, 0, [&] {
      d.begin_span(50.0, 1.0, 0, [&] { second_done = e.now(); });
    });
  });
  e.run();
  EXPECT_EQ(second_done, 150);
}

}  // namespace
}  // namespace hs::sim
