// Validate a Chrome-trace JSON file produced by --trace-json.
//
//   $ trace_validate out.json
//
// Checks the file is well-formed JSON, has a non-empty traceEvents array,
// that every duration event carries the expected fields with sane values
// (non-negative ts/dur, pid/tid present, step tag, unique span id), that
// telemetry counter events (ph:"C") are sane — non-negative strictly
// increasing ts per (pid, counter name), all args numeric, and every
// counter pid anchored by a metadata or duration event so it sits inside
// a source's pid range — and that flow events pair up: every flow id has
// exactly one start (ph:"s") and one finish (ph:"f", with the bp:"e"
// binding-point). Span ids encode
// their partition in the high bits (lane d allocates from (d+1)<<32;
// classic runs allocate from 0), so a merged multi-partition trace is
// accepted and the partition count reported. Exit code 0 on success;
// prints a one-line summary. Used by scripts/smoke_trace.sh and handy
// after any bench run.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "util/json.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: trace_validate <trace.json>\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "trace_validate: cannot open " << argv[1] << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (text.empty()) {
    std::cerr << "trace_validate: " << argv[1] << " is empty\n";
    return 1;
  }

  try {
    const auto doc = hs::util::json::parse(text);
    if (!doc.is_object() || !doc.contains("traceEvents")) {
      std::cerr << "trace_validate: missing traceEvents\n";
      return 1;
    }
    const auto& events = doc.at("traceEvents").as_array();
    std::size_t durations = 0;
    std::size_t counters = 0;
    std::set<double> pids;
    // Counter events may only use pids that metadata or duration events
    // establish (each source's pid range, including its telemetry
    // pseudo-process, names itself with ph:"M").
    std::set<double> anchor_pids;
    std::set<double> counter_pids;
    std::map<std::pair<double, std::string>, double> counter_last_ts;
    std::set<std::pair<double, double>> tids;
    // Spans are unique within one exported trace; multi-source files (one
    // machine per pid range) may repeat them, so key uniqueness by pid.
    std::set<std::pair<double, std::uint64_t>> spans;
    std::set<int> partitions;
    std::map<double, int> flow_starts;
    std::map<double, int> flow_finishes;
    for (const auto& ev : events) {
      const std::string& ph = ev.at("ph").as_string();
      const double pid = ev.at("pid").as_number();
      pids.insert(pid);
      if (ph == "M") {  // metadata (process/thread names)
        anchor_pids.insert(pid);
        continue;
      }
      if (ph == "C") {  // telemetry counter sample
        const std::string& name = ev.at("name").as_string();
        const double ts = ev.at("ts").as_number();
        if (ts < 0) {
          std::cerr << "trace_validate: negative ts in counter '" << name
                    << "'\n";
          return 1;
        }
        for (const auto& [key, value] : ev.at("args").as_object()) {
          if (!value.is_number()) {
            std::cerr << "trace_validate: non-numeric arg '" << key
                      << "' in counter '" << name << "'\n";
            return 1;
          }
        }
        // One sample per series bucket: ts must strictly increase per
        // (pid, counter) track.
        auto [it, inserted] = counter_last_ts.try_emplace({pid, name}, ts);
        if (!inserted) {
          if (ts <= it->second) {
            std::cerr << "trace_validate: non-monotone ts in counter '"
                      << name << "' (pid " << pid << ")\n";
            return 1;
          }
          it->second = ts;
        }
        counter_pids.insert(pid);
        ++counters;
        continue;
      }
      if (ph == "s" || ph == "f") {  // causal flow arrows
        if (!ev.contains("id")) {
          std::cerr << "trace_validate: flow event without id\n";
          return 1;
        }
        if (ev.at("ts").as_number() < 0) {
          std::cerr << "trace_validate: negative ts in flow event\n";
          return 1;
        }
        const double id = ev.at("id").as_number();
        if (ph == "s") {
          ++flow_starts[id];
        } else {
          if (!ev.contains("bp") || ev.at("bp").as_string() != "e") {
            std::cerr << "trace_validate: flow finish without bp:\"e\"\n";
            return 1;
          }
          ++flow_finishes[id];
        }
        continue;
      }
      if (ph != "X") {
        std::cerr << "trace_validate: unexpected event phase '" << ph << "'\n";
        return 1;
      }
      const double ts = ev.at("ts").as_number();
      const double dur = ev.at("dur").as_number();
      if (ts < 0 || dur < 0) {
        std::cerr << "trace_validate: negative ts/dur in event '"
                  << ev.at("name").as_string() << "'\n";
        return 1;
      }
      anchor_pids.insert(pid);
      tids.insert({pid, ev.at("tid").as_number()});
      if (!ev.at("args").contains("step")) {
        std::cerr << "trace_validate: event without step tag\n";
        return 1;
      }
      if (!ev.at("args").contains("span")) {
        std::cerr << "trace_validate: event without span id\n";
        return 1;
      }
      const double span_d = ev.at("args").at("span").as_number();
      if (span_d < 0) {
        std::cerr << "trace_validate: negative span id\n";
        return 1;
      }
      const auto span = static_cast<std::uint64_t>(span_d);
      if (span != 0 && !spans.insert({pid, span}).second) {
        std::cerr << "trace_validate: duplicate span id " << span << "\n";
        return 1;
      }
      partitions.insert(static_cast<int>(span >> 32));
      ++durations;
    }
    if (durations == 0) {
      std::cerr << "trace_validate: no duration events\n";
      return 1;
    }
    for (const double pid : counter_pids) {
      if (anchor_pids.count(pid) == 0) {
        std::cerr << "trace_validate: counter events on pid " << pid
                  << " outside every source's pid range\n";
        return 1;
      }
    }
    if (flow_starts.size() != flow_finishes.size()) {
      std::cerr << "trace_validate: " << flow_starts.size()
                << " flow starts vs " << flow_finishes.size()
                << " flow finishes\n";
      return 1;
    }
    for (const auto& [id, n] : flow_starts) {
      const auto it = flow_finishes.find(id);
      if (n != 1 || it == flow_finishes.end() || it->second != 1) {
        std::cerr << "trace_validate: flow id " << id
                  << " is not a single s/f pair\n";
        return 1;
      }
    }
    std::cout << "ok: " << durations << " duration events, "
              << flow_starts.size() << " flow pairs, " << counters
              << " counter samples, " << pids.size() << " processes, "
              << tids.size() << " threads, " << partitions.size()
              << " span partition(s)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "trace_validate: " << e.what() << "\n";
    return 1;
  }
}
