// halo_top — top-style utilization viewer for halosim telemetry.
//
//   $ halo_top telemetry.json [--run=<label>]
//   $ halo_top --live [--atoms=90000] [--gpus=8] [--nodes=1] [--workers=4]
//              [--steps=8] [--telemetry-every=100]
//
// Replay mode reads a `halosim-telemetry-v1` document — either the
// standalone file written by --telemetry-json or a bench-metrics-v1 file
// carrying an embedded top-level "telemetry" section — and prints, per
// run, a per-device/per-lane utilization table (events, events per safe
// window, wall busy vs barrier-wait time, NIC busy time, signal-wait
// stalls, MD step time) plus the safe-window width series and a
// barrier-dominance verdict: the share of lane wall time spent waiting at
// PDES window barriers. Sim-only documents (no Host-domain series, e.g. a
// parity artifact) fall back to a lane-imbalance heuristic for the
// verdict.
//
// Live mode builds the same skeleton halo-exchange case the benches use,
// runs it with telemetry on, and feeds the resulting document through the
// identical analysis path — one code path, two sources.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/json.hpp"

using namespace hs;

namespace {

struct LaneRow {
  double events = 0.0;          // engine events executed
  double win_events_mean = 0.0; // mean events per safe window
  double busy_ns = 0.0;         // Host: lane run time inside windows
  double barrier_ns = 0.0;      // Host: window barrier wait
  double nic_busy_ns = 0.0;     // fabric NIC occupancy charged to the lane
  double sig_wait_ns = 0.0;     // pgas signal-wait stalls (sim ns)
  double step_mean_ns = 0.0;    // mean MD step duration (sim ns)
  bool has_wall = false;
};

struct MetricView {
  std::string name;
  int device = -1;
  double count = 0.0;
  double total = 0.0;
  double min = 0.0;
  double max = 0.0;
  const util::json::Value* series = nullptr;  // {"dropped":..,"buckets":[..]}
};

double mean_of(const MetricView& m) {
  return m.count > 0 ? m.total / m.count : 0.0;
}

std::vector<MetricView> parse_metrics(const util::json::Value& run) {
  std::vector<MetricView> out;
  for (const auto& m : run.at("metrics").as_array()) {
    MetricView v;
    v.name = m.at("name").as_string();
    v.device = static_cast<int>(m.at("device").as_number());
    v.count = m.at("count").as_number();
    v.total = m.at("total").as_number();
    if (m.contains("min")) v.min = m.at("min").as_number();
    if (m.contains("max")) v.max = m.at("max").as_number();
    if (m.contains("series")) v.series = &m.at("series");
    out.push_back(std::move(v));
  }
  return out;
}

const MetricView* find(const std::vector<MetricView>& ms,
                       const std::string& name) {
  for (const auto& m : ms) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string fmt_ms(double ns) { return util::Table::fmt(ns / 1e6, 2); }
std::string fmt_us(double ns) { return util::Table::fmt(ns / 1e3, 1); }

void report_run(const std::string& label, const util::json::Value& run) {
  const double window_ns = run.at("window_ns").as_number();
  const auto metrics = parse_metrics(run);

  std::map<int, LaneRow> lanes;
  for (const auto& m : metrics) {
    if (m.device < 0) {
      // Classic (non-partitioned) engines report one global event counter;
      // show it as lane 0 so small runs still render a table.
      if (m.name == "engine.events") lanes[0].events += m.total;
      continue;
    }
    LaneRow& row = lanes[m.device];
    if (ends_with(m.name, ".events") && m.name.rfind("engine.", 0) == 0) {
      row.events += m.total;
    } else if (ends_with(m.name, ".window_events")) {
      row.win_events_mean = mean_of(m);
    } else if (ends_with(m.name, ".busy_wall_ns")) {
      row.busy_ns = m.total;
      row.has_wall = true;
    } else if (ends_with(m.name, ".barrier_wall_ns")) {
      row.barrier_ns = m.total;
      row.has_wall = true;
    } else if (ends_with(m.name, ".nic_busy_ns")) {
      row.nic_busy_ns = m.total;
    } else if (ends_with(m.name, ".signal_wait_ns")) {
      row.sig_wait_ns = m.total;
    } else if (ends_with(m.name, ".step_ns")) {
      row.step_mean_ns = mean_of(m);
    }
  }

  std::cout << "\n=== " << label << " ===\n";
  std::cout << "telemetry window: " << fmt_us(window_ns) << " us ("
            << metrics.size() << " metrics)\n";

  const MetricView* windows = find(metrics, "pdes.windows");
  const MetricView* width = find(metrics, "pdes.window_width_ns");
  const MetricView* msgs = find(metrics, "pdes.window_messages");
  if (windows != nullptr && width != nullptr) {
    std::cout << "safe windows: " << static_cast<long long>(windows->total)
              << ", width mean " << fmt_us(mean_of(*width)) << " us (min "
              << fmt_us(width->min) << ", max " << fmt_us(width->max) << ")";
    if (msgs != nullptr) {
      std::cout << ", " << util::Table::fmt(mean_of(*msgs), 1)
                << " cross-lane msgs/window";
    }
    std::cout << "\n";
    // Width over time: mean window width per telemetry bucket, a coarse
    // strip chart of how the conservative horizon evolves through the run.
    if (width->series != nullptr) {
      const auto& buckets = width->series->at("buckets").as_array();
      if (!buckets.empty()) {
        const std::size_t shown = std::min<std::size_t>(buckets.size(), 12);
        const std::size_t stride = (buckets.size() + shown - 1) / shown;
        std::cout << "width series (us, per " << fmt_us(window_ns)
                  << "us of sim time):";
        for (std::size_t i = 0; i < buckets.size(); i += stride) {
          const auto& b = buckets[i].as_array();
          const double count = b.at(1).as_number();
          const double sum = b.at(2).as_number();
          std::cout << " " << util::Table::fmt(
              count > 0 ? sum / count / 1e3 : 0.0, 1);
        }
        if (stride > 1) std::cout << "  (every " << stride << "th bucket)";
        std::cout << "\n";
      }
    }
  }

  if (!lanes.empty()) {
    bool any_wall = false;
    for (const auto& [d, row] : lanes) any_wall |= row.has_wall;
    util::Table table(any_wall
                          ? std::vector<std::string>{"lane", "events",
                                                     "ev/win", "busy ms",
                                                     "barrier ms", "barrier %",
                                                     "nic busy ms",
                                                     "sigwait ms", "step us"}
                          : std::vector<std::string>{"lane", "events",
                                                     "ev/win", "nic busy ms",
                                                     "sigwait ms", "step us"});
    for (const auto& [device, row] : lanes) {
      std::vector<std::string> cells{
          std::to_string(device),
          std::to_string(static_cast<long long>(row.events)),
          util::Table::fmt(row.win_events_mean, 1)};
      if (any_wall) {
        const double wall = row.busy_ns + row.barrier_ns;
        cells.push_back(fmt_ms(row.busy_ns));
        cells.push_back(fmt_ms(row.barrier_ns));
        cells.push_back(wall > 0
                            ? util::Table::fmt(100.0 * row.barrier_ns / wall, 1)
                            : "-");
      }
      cells.push_back(fmt_ms(row.nic_busy_ns));
      cells.push_back(fmt_ms(row.sig_wait_ns));
      cells.push_back(fmt_us(row.step_mean_ns));
      table.add_row(cells);
    }
    table.print(std::cout);

    // Barrier-dominance verdict. With wall-clock (Host) series: the share
    // of total lane wall time spent blocked at window barriers. Without:
    // lane load imbalance bounds it from below — the most-loaded lane sets
    // each window's span while the others wait.
    double busy = 0.0;
    double barrier = 0.0;
    double ev_max = 0.0;
    double ev_sum = 0.0;
    for (const auto& [d, row] : lanes) {
      busy += row.busy_ns;
      barrier += row.barrier_ns;
      ev_max = std::max(ev_max, row.win_events_mean);
      ev_sum += row.win_events_mean;
    }
    if (any_wall && busy + barrier > 0.0) {
      const double share = 100.0 * barrier / (busy + barrier);
      const char* verdict = share > 50.0   ? "barrier-dominated"
                            : share > 25.0 ? "barrier-significant"
                                           : "compute-dominated";
      std::cout << "verdict: " << verdict << " — "
                << util::Table::fmt(share, 1)
                << "% of lane wall time is window-barrier wait (busy "
                << fmt_ms(busy) << " ms, barrier " << fmt_ms(barrier)
                << " ms)\n";
    } else if (ev_sum > 0.0 && lanes.size() > 1) {
      const double imbalance =
          ev_max / (ev_sum / static_cast<double>(lanes.size()));
      std::cout << "verdict: no wall-clock series in this document; lane "
                   "load imbalance "
                << util::Table::fmt(imbalance, 2)
                << "x (max/mean events per window) — "
                << (imbalance > 1.5 ? "likely barrier-dominated"
                                    : "lanes are balanced")
                << "\n";
    }
  }

  // Fabric/pgas totals (global-name series merge across lanes).
  double xfer = 0.0;
  double bytes = 0.0;
  for (const auto& m : metrics) {
    if (m.name.rfind("fabric.", 0) == 0 && ends_with(m.name, ".transfers")) {
      xfer += m.total;
    }
    if (m.name.rfind("fabric.", 0) == 0 && ends_with(m.name, ".bytes")) {
      bytes += m.total;
    }
  }
  if (xfer > 0.0) {
    std::cout << "fabric: " << static_cast<long long>(xfer) << " transfers, "
              << util::Table::fmt(bytes / 1e6, 2) << " MB\n";
  }
}

int replay(const std::string& path, const std::string& only_run) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "halo_top: cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    const auto doc = util::json::parse(buf.str());
    // Accept the standalone telemetry document or a bench-metrics file
    // with an embedded "telemetry" section.
    const util::json::Value* telemetry = &doc;
    if (doc.contains("schema") &&
        doc.at("schema").as_string() == util::metrics::kSchema) {
      if (!doc.contains("telemetry")) {
        std::cerr << "halo_top: " << path
                  << " is a bench-metrics file without a telemetry section "
                     "(re-run the bench with --telemetry-json)\n";
        return 1;
      }
      telemetry = &doc.at("telemetry");
    }
    if (!telemetry->contains("schema") ||
        telemetry->at("schema").as_string() != util::telemetry::kSchema) {
      std::cerr << "halo_top: " << path << " is not a "
                << util::telemetry::kSchema << " document\n";
      return 1;
    }
    const auto& runs = telemetry->at("runs").as_object();
    if (runs.empty()) {
      std::cerr << "halo_top: no runs in " << path << "\n";
      return 1;
    }
    bool matched = false;
    for (const auto& [label, run] : runs) {
      if (!only_run.empty() && label != only_run) continue;
      matched = true;
      report_run(label, run);
    }
    if (!matched) {
      std::cerr << "halo_top: run '" << only_run << "' not found\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "halo_top: " << e.what() << "\n";
    return 1;
  }
}

int live(const util::Cli& cli) {
  bench::CaseSpec spec;
  spec.atoms = cli.get_int("atoms", 90000);
  const int nodes = static_cast<int>(cli.get_int("nodes", 1));
  const int gpus = static_cast<int>(cli.get_int("gpus", 8));
  spec.topology = sim::Topology::dgx_h100(nodes, gpus);
  spec.steps = static_cast<int>(cli.get_int("steps", 8));
  spec.workers = static_cast<int>(cli.get_int("workers", 4));
  spec.config.transport = halo::Transport::Shmem;
  const long long every_us = cli.get_int("telemetry-every", 100);

  const float box_len = static_cast<float>(
      std::cbrt(static_cast<double>(spec.atoms) / bench::kGrappaDensity));
  const md::Box box(box_len, box_len, box_len);
  const dd::DomainGrid grid(
      box, dd::choose_grid(box, spec.topology.device_count(),
                           bench::kCommCutoff));

  sim::MachineOptions machine_options;
  machine_options.workers = spec.workers;
  sim::Machine machine(spec.topology, spec.cost_model, machine_options);
  machine.enable_telemetry(every_us * 1000);
  pgas::World world(machine);
  msg::Comm comm(machine);
  runner::MdRunner md_runner(
      machine, world, comm,
      halo::make_skeleton_workload(grid, bench::kCommCutoff,
                                   bench::kGrappaDensity),
      spec.config);
  md_runner.run(spec.steps);

  // Route the live registry through the same JSON analysis path replay
  // uses, wall-clock series included.
  std::ostringstream os;
  machine.telemetry().write_json(os, /*include_host=*/true);
  try {
    const auto run = util::json::parse(os.str());
    report_run("live " + bench::size_label(spec.atoms) + " x" +
                   std::to_string(spec.topology.device_count()) + " workers" +
                   std::to_string(spec.workers),
               run);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "halo_top: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.get_bool("live", false)) return live(cli);
  if (cli.positional().size() != 1) {
    std::cerr << "usage: halo_top <telemetry.json> [--run=<label>]\n"
                 "       halo_top --live [--atoms=N] [--gpus=N] [--nodes=N] "
                 "[--workers=N] [--steps=N]\n";
    return 2;
  }
  return replay(cli.positional()[0], cli.get("run", ""));
}
