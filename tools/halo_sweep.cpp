// Campaign sweep runner: expand a `halosim-campaign-spec-v1` grid into
// cases, serve hits from the content-addressed result cache, simulate
// misses — on an in-process thread pool with warm prepared state by
// default, or across forked shard processes with --isolate-shards — and
// write the merged `halosim-campaign-v1` document.
//
//   $ halo_sweep spec.json [--cache-dir=DIR] [--out=FILE] [--csv=FILE]
//                [--shards=N] [--isolate-shards] [--no-prepared-state]
//                [--cache-max-entries=N] [--quiet] [--list]
//   $ halo_sweep spec.json --cache-dir=DIR --shard=i/N   (worker mode)
//   $ halo_sweep --serve [--cache-dir=DIR] [--quiet]     (batch server)
//
// Per-case progress (hash, hit/miss, wall ms) streams to stderr as each
// case resolves; documents never carry hit/miss or wall time, so a rerun
// of the same spec is byte-identical (docs/sweep.md).
//
// --serve reads one spec per line from stdin (a full JSON document per
// line) and answers with one compact halosim-campaign-v1 line on stdout,
// keeping the cache memoized in memory across requests. A blank line or
// EOF ends the session. Errors answer a one-line {"error": ...} object —
// the server never exits mid-session on a bad spec.
//
// Exit codes: 0 — success; 2 — usage, I/O, or spec error.
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sweep/output.hpp"
#include "sweep/runner.hpp"
#include "util/json.hpp"
#include "util/json_writer.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

/// The path shard children should exec. /proc/self/exe survives PATH
/// lookups and cwd changes; argv[0] is the fallback.
std::string self_exe_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0 != nullptr ? argv0 : "";
}

int usage() {
  std::cerr
      << "usage: halo_sweep <spec.json> [--cache-dir=DIR] [--out=FILE]\n"
         "                  [--csv=FILE] [--shards=N] [--isolate-shards]\n"
         "                  [--no-prepared-state] [--cache-max-entries=N]\n"
         "                  [--no-cache] [--quiet] [--list]\n"
         "       halo_sweep <spec.json> --cache-dir=DIR --shard=i/N\n"
         "       halo_sweep --serve [--cache-dir=DIR] [--quiet]\n";
  return 2;
}

struct Options {
  std::string spec_path;
  std::string cache_dir;
  std::string out_path;
  std::string csv_path;
  int shards = 1;
  int shard_index = -1;  // >= 0: worker mode
  int shard_count = 0;
  int cache_max_entries = 0;
  bool serve = false;
  bool no_cache = false;
  bool isolate_shards = false;
  bool prepared_state = true;
  bool quiet = false;
  bool list = false;
};

bool parse_int(const std::string& text, int& out) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == text.c_str()) return false;
  out = static_cast<int>(v);
  return true;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve") {
      opt.serve = true;
    } else if (arg == "--no-cache") {
      opt.no_cache = true;
    } else if (arg == "--isolate-shards") {
      opt.isolate_shards = true;
    } else if (arg == "--no-prepared-state") {
      opt.prepared_state = false;
    } else if (arg.rfind("--cache-max-entries=", 0) == 0) {
      if (!parse_int(arg.substr(20), opt.cache_max_entries) ||
          opt.cache_max_entries < 0) {
        std::cerr << "halo_sweep: bad --cache-max-entries value '" << arg
                  << "'\n";
        return false;
      }
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--list") {
      opt.list = true;
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      opt.cache_dir = arg.substr(12);
    } else if (arg.rfind("--out=", 0) == 0) {
      opt.out_path = arg.substr(6);
    } else if (arg.rfind("--csv=", 0) == 0) {
      opt.csv_path = arg.substr(6);
    } else if (arg.rfind("--shards=", 0) == 0) {
      if (!parse_int(arg.substr(9), opt.shards) || opt.shards < 1) {
        std::cerr << "halo_sweep: bad --shards value '" << arg << "'\n";
        return false;
      }
    } else if (arg.rfind("--shard=", 0) == 0) {
      const std::string spec = arg.substr(8);
      const std::size_t slash = spec.find('/');
      if (slash == std::string::npos ||
          !parse_int(spec.substr(0, slash), opt.shard_index) ||
          !parse_int(spec.substr(slash + 1), opt.shard_count) ||
          opt.shard_index < 0 || opt.shard_count < 1 ||
          opt.shard_index >= opt.shard_count) {
        std::cerr << "halo_sweep: bad --shard value '" << arg
                  << "' (want i/N with 0 <= i < N)\n";
        return false;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "halo_sweep: unknown option '" << arg << "'\n";
      return false;
    } else if (opt.spec_path.empty()) {
      opt.spec_path = arg;
    } else {
      std::cerr << "halo_sweep: unexpected argument '" << arg << "'\n";
      return false;
    }
  }
  if (!opt.serve && opt.spec_path.empty()) return false;
  if (opt.serve && !opt.spec_path.empty()) {
    std::cerr << "halo_sweep: --serve takes specs on stdin, not a file\n";
    return false;
  }
  if (opt.shard_index >= 0 && opt.cache_dir.empty()) {
    std::cerr << "halo_sweep: --shard requires --cache-dir (shards hand "
                 "results back through the cache)\n";
    return false;
  }
  return true;
}

int run_worker(const Options& opt) {
  std::string text;
  if (!read_file(opt.spec_path, text)) {
    std::cerr << "halo_sweep: cannot open " << opt.spec_path << "\n";
    return 2;
  }
  const hs::sweep::Campaign campaign = hs::sweep::parse_campaign_text(text);
  const hs::sweep::ResultCache cache(opt.cache_dir);
  hs::sweep::run_shard(campaign, cache, opt.shard_index, opt.shard_count,
                       opt.quiet, opt.prepared_state);
  return 0;
}

int run_file(const Options& opt, const char* argv0) {
  std::string text;
  if (!read_file(opt.spec_path, text)) {
    std::cerr << "halo_sweep: cannot open " << opt.spec_path << "\n";
    return 2;
  }
  const hs::sweep::Campaign campaign = hs::sweep::parse_campaign_text(text);

  if (opt.list) {
    // Expansion preview: one "<hash> <label>" line per case, no
    // simulation — validates a spec (and shows what the cache keys are)
    // before committing to a long run.
    const auto labels = hs::sweep::case_labels(campaign.cases);
    for (std::size_t i = 0; i < campaign.cases.size(); ++i) {
      std::cout << hs::sweep::case_hash_hex(campaign.cases[i]) << " "
                << labels[i] << "\n";
    }
    std::cerr << "halo_sweep: campaign '" << campaign.name << "': "
              << campaign.cases.size() << " cases\n";
    return 0;
  }

  hs::sweep::SweepOptions sweep;
  sweep.cache_dir = opt.no_cache ? "" : opt.cache_dir;
  sweep.shards = opt.shards;
  sweep.isolate_shards = opt.isolate_shards;
  sweep.prepared_state = opt.prepared_state;
  sweep.cache_max_entries = static_cast<std::size_t>(opt.cache_max_entries);
  sweep.self_exe = self_exe_path(argv0);
  sweep.spec_path = opt.spec_path;
  sweep.quiet = opt.quiet;
  const hs::sweep::CampaignResult result =
      hs::sweep::run_campaign(campaign, sweep);

  if (!opt.out_path.empty()) {
    std::ofstream out(opt.out_path);
    if (!out) {
      std::cerr << "halo_sweep: cannot write " << opt.out_path << "\n";
      return 2;
    }
    hs::sweep::write_campaign_json(out, result);
  } else {
    hs::sweep::write_campaign_json(std::cout, result);
  }
  if (!opt.csv_path.empty()) {
    std::ofstream csv(opt.csv_path);
    if (!csv) {
      std::cerr << "halo_sweep: cannot write " << opt.csv_path << "\n";
      return 2;
    }
    hs::sweep::write_campaign_csv(csv, result);
  }
  return 0;
}

int run_serve(const Options& opt) {
  // One warm cache for the whole session: the disk layer (when given)
  // plus an in-memory memo, so repeat queries — even with the disk cache
  // disabled — answer without re-simulating.
  hs::sweep::ResultCache cache(opt.no_cache ? "" : opt.cache_dir);
  cache.set_memoize(true);

  // Warm execution state also lives for the whole session: prepared
  // setup slices and recycled heap arenas carry across batch lines, so a
  // later spec that varies only transport/fabric axes skips setup and
  // arena faults entirely.
  hs::sweep::PreparedStateCache prepared;
  hs::runner::CaseScratch scratch;
  hs::sweep::ExecutionContext ctx;
  if (opt.prepared_state) {
    ctx.prepared = &prepared;
    ctx.scratch = &scratch;
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) break;
    try {
      const hs::sweep::Campaign campaign =
          hs::sweep::parse_campaign_text(line);
      hs::sweep::CampaignResult result;
      result.name = campaign.name;
      const auto labels = hs::sweep::case_labels(campaign.cases);
      result.cases.resize(campaign.cases.size());
      for (std::size_t i = 0; i < campaign.cases.size(); ++i) {
        auto& outcome = result.cases[i];
        outcome.config = campaign.cases[i];
        outcome.label = labels[i];
        outcome.hash = hs::sweep::case_hash_hex(outcome.config);
        if (auto document = cache.load(outcome.hash)) {
          outcome.hit = true;
          outcome.document = std::move(*document);
          ++result.hits;
        } else {
          outcome.document =
              hs::sweep::simulate_case_document(outcome.config, ctx);
          cache.store(outcome.hash, outcome.document);
          ++result.misses;
        }
        if (!opt.quiet) {
          std::cerr << "halo_sweep: serve " << outcome.hash
                    << (outcome.hit ? " hit " : " miss ") << outcome.label
                    << "\n";
        }
      }
      for (auto& outcome : result.cases) {
        const auto doc = hs::util::json::parse(outcome.document);
        for (const auto& [key, value] :
             doc.at("cases").as_object().begin()->second.as_object()) {
          if (value.is_number()) {
            outcome.metrics.emplace_back(key, value.as_number());
          }
        }
      }
      hs::sweep::write_campaign_json(std::cout, result, /*pretty=*/false);
    } catch (const std::exception& e) {
      std::cout << "{\"error\":\"" << hs::util::json::escape(e.what())
                << "\"}\n";
    }
    std::cout.flush();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage();
  try {
    if (opt.serve) return run_serve(opt);
    if (opt.shard_index >= 0) return run_worker(opt);
    return run_file(opt, argv[0]);
  } catch (const std::exception& e) {
    std::cerr << "halo_sweep: " << e.what() << "\n";
    return 2;
  }
}
