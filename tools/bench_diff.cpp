// Compare two bench metrics JSON files ("halosim-bench-metrics-v1", as
// written by --metrics-json) and gate on regressions.
//
//   $ bench_diff baseline.json candidate.json [--threshold=0.10]
//
// Prints a table of every metric that moved more than the threshold, plus
// notes for metric keys present in only one file (added/removed — schema
// drift, reported but never gated on). Exit codes: 0 — no regression;
// 1 — a time-like metric (suffix `_us`/`_ns`) grew past the threshold, or
// the candidate lost a whole case the baseline had; 2 — usage or I/O
// error. scripts/bench_gate.sh builds a CI gate on this.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "util/json.hpp"
#include "util/metrics.hpp"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.10;
  const char* base_path = nullptr;
  const char* cand_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      char* end = nullptr;
      threshold = std::strtod(arg.c_str() + 12, &end);
      if (end == nullptr || *end != '\0' || threshold < 0) {
        std::cerr << "bench_diff: bad threshold '" << arg << "'\n";
        return 2;
      }
    } else if (base_path == nullptr) {
      base_path = argv[i];
    } else if (cand_path == nullptr) {
      cand_path = argv[i];
    } else {
      std::cerr << "bench_diff: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }
  if (base_path == nullptr || cand_path == nullptr) {
    std::cerr << "usage: bench_diff <baseline.json> <candidate.json>"
                 " [--threshold=0.10]\n";
    return 2;
  }

  std::string base_text;
  std::string cand_text;
  if (!read_file(base_path, base_text)) {
    std::cerr << "bench_diff: cannot open " << base_path << "\n";
    return 2;
  }
  if (!read_file(cand_path, cand_text)) {
    std::cerr << "bench_diff: cannot open " << cand_path << "\n";
    return 2;
  }

  try {
    const auto base = hs::util::json::parse(base_text);
    const auto cand = hs::util::json::parse(cand_text);
    const auto result = hs::util::metrics::diff(base, cand, threshold);
    hs::util::metrics::print_diff(std::cout, result, threshold);
    return result.regression ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << e.what() << "\n";
    return 2;
  }
}
