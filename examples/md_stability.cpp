// Energy-stability check across transports: run the same microcanonical
// grappa system through the MPI and NVSHMEM halo exchanges plus a
// single-rank reference, and compare total-energy drift and trajectories.
// Communication layers must be physics-neutral: both decomposed runs must
// track the reference within float accumulation noise.
//
//   $ md_stability [--atoms=3000] [--steps=30] [--trace-json=out.json]
//                  [--counters]
#include <cmath>
#include <iostream>
#include <vector>

#include "dd/decomposition.hpp"
#include "md/integrator.hpp"
#include "md/nonbonded.hpp"
#include "md/system.hpp"
#include "runner/md_runner.hpp"
#include "runner/timing.hpp"
#include "sim/trace_export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hs;

namespace {

constexpr double kRlist = 1.0;
constexpr double kCutoff = 0.9;

double total_energy(const md::System& sys, const md::ForceField& ff) {
  md::PairList list;
  list.build_local(sys.box, sys.x, sys.natoms(), kRlist);
  std::vector<md::Vec3> f(sys.x.size());
  const md::Energies pe =
      md::compute_nonbonded(sys.box, ff, sys.x, sys.type, list, f);
  return pe.total() + md::kinetic_energy(sys, ff);
}

md::System run_decomposed(const md::System& start, const md::ForceField& ff,
                          halo::Transport transport, int steps,
                          sim::ChromeTraceWriter* writer, bool counters,
                          const std::string& label) {
  dd::Decomposition dd(start, dd::GridDims{2, 2, 1}, kRlist);
  sim::Machine machine(sim::Topology::dgx_h100(2, 2),
                       sim::CostModel::h100_eos());
  machine.trace().set_enabled(writer != nullptr || counters);
  pgas::World world(machine);
  msg::Comm comm(machine);
  runner::RunConfig config;
  config.transport = transport;
  config.dt_fs = 0.5;  // short timestep: clean NVE conservation check
  runner::MdRunner runner(machine, world, comm,
                          halo::make_functional_workload(dd), config, &ff);
  runner.run(steps);
  if (writer != nullptr) writer->add(machine.trace(), label);
  if (counters) {
    std::cout << "--- observability: " << label << " ---\n";
    sim::print_counters(std::cout, machine.fabric().counters());
    pgas::print_counters(std::cout, world.counters());
    runner::print_trace_aggregate(std::cout,
                                  runner::aggregate_trace(machine.trace()));
    std::cout << "\n";
  }
  return dd.gather();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int atoms = static_cast<int>(cli.get_int("atoms", 3000));
  const int steps = static_cast<int>(cli.get_int("steps", 30));

  md::GrappaSpec spec;
  spec.target_atoms = atoms;
  spec.density = 30.0;       // dilute: gentle forces for a clean NVE check
  spec.temperature = 150.0;
  const md::System start = md::build_grappa(spec);
  const md::ForceField ff(md::grappa_atom_types(), kCutoff);
  const double e0 = total_energy(start, ff);

  // Single-rank reference with the same fixed pair list protocol.
  md::System ref = start;
  {
    md::PairList list;
    list.build_local(ref.box, ref.x, ref.natoms(), kRlist);
    const md::LeapfrogIntegrator integ(0.0005);  // matches config.dt_fs
    for (int s = 0; s < steps; ++s) {
      std::vector<md::Vec3> f(ref.x.size());
      md::compute_nonbonded(ref.box, ff, ref.x, ref.type, list, f);
      integ.step(ref.box, ff, ref.type, f, ref.v, ref.x);
    }
  }

  const std::string trace_json = cli.get("trace-json", "");
  const bool counters = cli.get_bool("counters", false);
  sim::ChromeTraceWriter writer;
  sim::ChromeTraceWriter* wp = trace_json.empty() ? nullptr : &writer;

  const md::System via_mpi =
      run_decomposed(start, ff, halo::Transport::Mpi, steps, wp, counters, "mpi");
  const md::System via_shmem = run_decomposed(
      start, ff, halo::Transport::Shmem, steps, wp, counters, "shmem");

  auto drift = [&](const md::System& sys) {
    return (total_energy(sys, ff) - e0) / std::abs(e0);
  };
  auto max_dev = [&](const md::System& sys) {
    double m = 0.0;
    for (int i = 0; i < ref.natoms(); ++i) {
      m = std::max(m, static_cast<double>(md::norm(ref.box.min_image(
                          sys.x[static_cast<std::size_t>(i)],
                          ref.x[static_cast<std::size_t>(i)]))));
    }
    return m;
  };

  std::cout << "grappa " << start.natoms() << " atoms, " << steps
            << " steps, dt 0.5 fs, E0 = " << e0 << " kJ/mol\n\n";
  util::Table table({"run", "rel. energy drift", "max |dx| vs reference (nm)"});
  table.add_row({"single-rank reference", util::Table::fmt(drift(ref), 6), "0"});
  table.add_row({"4 ranks, MPI halo", util::Table::fmt(drift(via_mpi), 6),
                 util::Table::fmt(max_dev(via_mpi), 6)});
  table.add_row({"4 ranks, NVSHMEM halo", util::Table::fmt(drift(via_shmem), 6),
                 util::Table::fmt(max_dev(via_shmem), 6)});
  table.print(std::cout);
  std::cout << "\nBoth transports must track the reference to within float\n"
               "accumulation noise — the halo exchange is physics-neutral.\n";
  if (wp != nullptr) {
    if (writer.write_file(trace_json)) {
      std::cout << "trace written: " << trace_json << " ("
                << writer.event_count() << " events)\n";
    } else {
      std::cerr << "failed to write trace file: " << trace_json << "\n";
      return 1;
    }
  }
  return 0;
}
