// Strong-scaling capacity study: sweep node counts for a system size of
// your choosing and see where each transport stops scaling — the tool a
// cluster operator would use before committing GPU hours.
//
//   $ strong_scaling_study [--atoms=1440000] [--gpus-per-node=4]
//                          [--max-nodes=32] [--fabric=ib|nvl72]
//                          [--trace-json=out.json] [--counters]
#include <cmath>
#include <iostream>
#include <string>

#include "dd/geometry.hpp"
#include "runner/md_runner.hpp"
#include "runner/timing.hpp"
#include "sim/trace_export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const long long atoms = cli.get_int("atoms", 1440000);
  const int gpus_per_node = static_cast<int>(cli.get_int("gpus-per-node", 4));
  const int max_nodes = static_cast<int>(cli.get_int("max-nodes", 32));
  const bool nvl72 = cli.get("fabric", "ib") == "nvl72";
  const std::string trace_json = cli.get("trace-json", "");
  const bool counters = cli.get_bool("counters", false) || !trace_json.empty();
  sim::ChromeTraceWriter writer;

  constexpr double kDensity = 100.0;
  constexpr double kCutoff = 1.3;
  const float box_len =
      static_cast<float>(std::cbrt(static_cast<double>(atoms) / kDensity));
  const md::Box box(box_len, box_len, box_len);

  std::cout << "strong scaling: " << atoms << " atoms, box " << box_len
            << " nm, " << gpus_per_node << " GPUs/node, fabric "
            << (nvl72 ? "rack-wide NVLink (NVL72)" : "NVLink+InfiniBand")
            << "\n\n";

  util::Table table({"nodes", "gpus", "dd", "atoms/gpu", "mpi ns/day",
                     "nvshmem ns/day", "S", "nvshmem eff"});

  double base = 0.0;
  int base_nodes = 0;
  for (int nodes = 1; nodes <= max_nodes; nodes *= 2) {
    const int ranks = nodes * gpus_per_node;
    dd::GridDims dims;
    try {
      dims = dd::choose_grid(box, ranks, kCutoff);
    } catch (const std::exception&) {
      std::cout << "(stopping: no feasible decomposition for " << ranks
                << " ranks)\n";
      break;
    }
    const dd::DomainGrid grid(box, dims);
    const auto topo = nvl72 ? sim::Topology::gb200_nvl72(nodes, gpus_per_node)
                            : sim::Topology::dgx_h100(nodes, gpus_per_node);
    const auto cost = nvl72 ? sim::CostModel::gb200_nvl72()
                            : sim::CostModel::h100_eos();

    double perf[2] = {0, 0};
    for (int t = 0; t < 2; ++t) {
      sim::Machine machine(topo, cost);
      machine.trace().set_enabled(counters);
      pgas::World world(machine);
      msg::Comm comm(machine);
      runner::RunConfig config;
      config.transport = t == 0 ? halo::Transport::Mpi : halo::Transport::Shmem;
      runner::MdRunner runner(
          machine, world, comm,
          halo::make_skeleton_workload(grid, kCutoff, kDensity), config);
      runner.run(14);
      perf[t] = runner.perf(4).ns_per_day;
      const std::string label =
          (t == 0 ? "mpi " : "shmem ") + std::to_string(nodes) + "n";
      if (!trace_json.empty()) writer.add(machine.trace(), label);
      if (counters) {
        std::cout << "--- observability: " << label << " ---\n";
        sim::print_counters(std::cout, machine.fabric().counters());
        pgas::print_counters(std::cout, world.counters());
        runner::print_trace_aggregate(
            std::cout, runner::aggregate_trace(machine.trace(), 4));
        std::cout << "\n";
      }
    }
    if (base == 0.0) {
      base = perf[1];
      base_nodes = nodes;
    }
    const double eff =
        perf[1] / (base * static_cast<double>(nodes) / base_nodes);
    table.add_row(
        {std::to_string(nodes), std::to_string(ranks),
         std::to_string(dims.nx) + "x" + std::to_string(dims.ny) + "x" +
             std::to_string(dims.nz),
         std::to_string(atoms / ranks), util::Table::fmt(perf[0], 0),
         util::Table::fmt(perf[1], 0), util::Table::fmt(perf[1] / perf[0], 2),
         util::Table::fmt(100.0 * eff, 0) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nScaling saturates near 10-25k atoms/GPU (GPU "
               "under-utilization, paper §6.2);\nthe NVSHMEM advantage (S) "
               "grows with node count as latency dominates.\n";
  if (!trace_json.empty()) {
    if (writer.write_file(trace_json)) {
      std::cout << "trace written: " << trace_json << " ("
                << writer.event_count() << " events)\n";
    } else {
      std::cerr << "failed to write trace file: " << trace_json << "\n";
      return 1;
    }
  }
  return 0;
}
