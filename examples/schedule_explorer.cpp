// Schedule explorer: render the per-stream kernel timeline of one MD step
// for any transport/tuning combination — an interactive version of the
// paper's Figs. 1-2, useful for understanding where a configuration loses
// overlap.
//
//   $ schedule_explorer [--atoms=720000] [--nodes=4] [--transport=shmem|mpi]
//                       [--no-fuse] [--no-depsplit] [--no-tma] [--no-fusesig]
//                       [--old-prune] [--step=5] [--rank=0]
//                       [--trace-json=out.json] [--counters]
#include <cmath>
#include <iostream>

#include "dd/geometry.hpp"
#include "runner/md_runner.hpp"
#include "runner/timing.hpp"
#include "sim/trace_export.hpp"
#include "util/cli.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const long long atoms = cli.get_int("atoms", 720000);
  const int nodes = static_cast<int>(cli.get_int("nodes", 4));
  const bool use_mpi = cli.get("transport", "shmem") == "mpi";
  const auto step = cli.get_int("step", 5);
  const int rank = static_cast<int>(cli.get_int("rank", 0));

  runner::RunConfig config;
  config.transport = use_mpi ? halo::Transport::Mpi : halo::Transport::Shmem;
  config.halo_tuning.fuse_pulses = !cli.get_bool("no-fuse", false);
  config.halo_tuning.dependency_partitioning =
      !cli.get_bool("no-depsplit", false);
  config.halo_tuning.use_tma = !cli.get_bool("no-tma", false);
  config.halo_tuning.fused_signaling = !cli.get_bool("no-fusesig", false);
  if (cli.get_bool("old-prune", false)) {
    config.prune_low_priority_stream = false;
    config.third_stream_for_update = false;
    config.prune_interval = 1;
  }

  constexpr double kDensity = 100.0;
  constexpr double kCutoff = 1.3;
  const float box_len =
      static_cast<float>(std::cbrt(static_cast<double>(atoms) / kDensity));
  const md::Box box(box_len, box_len, box_len);
  const dd::DomainGrid grid(box, dd::choose_grid(box, nodes * 4, kCutoff));

  sim::Machine machine(sim::Topology::dgx_h100(nodes, 4),
                       sim::CostModel::h100_eos());
  machine.trace().set_enabled(true);
  pgas::World world(machine);
  msg::Comm comm(machine);
  runner::MdRunner runner(machine, world, comm,
                          halo::make_skeleton_workload(grid, kCutoff, kDensity),
                          config);
  runner.run(static_cast<int>(step) + 3);

  std::cout << "grappa " << atoms << " atoms on " << nodes * 4 << " GPUs ("
            << grid.dims().nx << "x" << grid.dims().ny << "x"
            << grid.dims().nz << " DD), transport "
            << (use_mpi ? "MPI" : "NVSHMEM") << "\n\n";
  runner::render_timeline(machine.trace(), rank, step, std::cout);

  const auto perf = runner.perf(2);
  std::cout << "\nthroughput: " << perf.ns_per_day << " ns/day ("
            << perf.ms_per_step * 1000.0 << " us/step)\n";

  if (cli.get_bool("counters", false)) {
    std::cout << "\n";
    sim::print_counters(std::cout, machine.fabric().counters());
    pgas::print_counters(std::cout, world.counters());
    runner::print_trace_aggregate(std::cout,
                                  runner::aggregate_trace(machine.trace(), 2));
  }
  const std::string trace_json = cli.get("trace-json", "");
  if (!trace_json.empty()) {
    sim::ChromeTraceWriter writer;
    writer.add(machine.trace(), use_mpi ? "mpi" : "shmem");
    if (writer.write_file(trace_json)) {
      std::cout << "trace written: " << trace_json << " ("
                << writer.event_count() << " events)\n";
    } else {
      std::cerr << "failed to write trace file: " << trace_json << "\n";
      return 1;
    }
  }
  return 0;
}
