// PME validation walk-through: the long-range electrostatics substrate
// behind GROMACS' rank specialization, validated against textbook physics.
//
//   $ pme_validation [--atoms=24]
//
// Shows: (1) the NaCl Madelung constant recovered by direct Ewald and by
// SPME, (2) mesh-vs-exact reciprocal energy/force agreement on a random
// neutral system, (3) grid-resolution convergence.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "md/ewald.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n_random = static_cast<int>(cli.get_int("atoms", 24));

  // --- Madelung constant ---------------------------------------------
  md::Box cell(2, 2, 2);
  std::vector<md::Vec3> ions;
  std::vector<double> charges;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      for (int k = 0; k < 2; ++k) {
        ions.push_back(md::Vec3{static_cast<float>(i), static_cast<float>(j),
                                static_cast<float>(k)});
        charges.push_back((i + j + k) % 2 == 0 ? 1.0 : -1.0);
      }
    }
  }
  md::EwaldParams p;
  p.beta = 4.0;
  p.r_cut = 0.99;
  p.mmax = 16;
  p.grid = {32, 32, 32};
  const double direct_e = md::ewald_direct(cell, ions, charges, p).total();
  const double mesh_e = md::pme(cell, ions, charges, p).total();
  const double madelung_ref = -4.0 * 1.747565;  // 8-ion NaCl cell
  std::cout << "NaCl rock-salt cell (8 ions):\n"
            << "  reference (Madelung)  : " << madelung_ref << "\n"
            << "  direct Ewald          : " << direct_e << "\n"
            << "  SPME (32^3, order 4)  : " << mesh_e << "\n\n";

  // --- Random neutral system: PME vs direct Ewald ----------------------
  md::Box box(4, 4, 4);
  util::Rng rng(2025);
  std::vector<md::Vec3> x;
  std::vector<double> q;
  for (int i = 0; i < n_random; ++i) {
    x.push_back(md::Vec3{static_cast<float>(rng.uniform(0, 4)),
                         static_cast<float>(rng.uniform(0, 4)),
                         static_cast<float>(rng.uniform(0, 4))});
    q.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  p.beta = 2.5;
  p.r_cut = 1.2;
  p.mmax = 14;
  const md::EwaldResult exact = md::ewald_direct(box, x, q, p);

  util::Table table({"grid", "recip energy", "|dE| vs exact", "max |dF|"});
  for (int k : {16, 32, 64}) {
    p.grid = {k, k, k};
    const md::EwaldResult mesh = md::pme(box, x, q, p);
    double max_df = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      max_df = std::max(
          {max_df, std::abs(mesh.forces[i].x - exact.forces[i].x),
           std::abs(mesh.forces[i].y - exact.forces[i].y),
           std::abs(mesh.forces[i].z - exact.forces[i].z)});
    }
    table.add_row({std::to_string(k) + "^3",
                   util::Table::fmt(mesh.e_recip, 6),
                   util::Table::fmt(std::abs(mesh.e_recip - exact.e_recip), 6),
                   util::Table::fmt(max_df, 6)});
  }
  std::cout << n_random << " random ions, exact reciprocal energy "
            << exact.e_recip << ":\n\n";
  table.print(std::cout);
  std::cout << "\nSPME converges to the direct Ewald sum as the mesh refines "
               "— the same\nmathematics GROMACS' PME ranks evaluate with "
               "cuFFT (paper §2.2).\n";
  return 0;
}
