// Quickstart: run a small grappa-like MD system, decomposed over four
// simulated GPUs, with the GPU-initiated NVSHMEM-style halo exchange — and
// verify physics on the way out.
//
//   $ quickstart [--atoms=4000] [--steps=20] [--transport=shmem|mpi]
//                [--trace-json=out.json] [--counters]
//
// This exercises the full public API in functional mode: system building
// (hs::md), domain decomposition (hs::dd), the simulated cluster
// (hs::sim), the halo transports (hs::halo), and the GPU-resident runner
// (hs::runner).
#include <iostream>

#include "dd/decomposition.hpp"
#include "md/nonbonded.hpp"
#include "md/system.hpp"
#include "runner/md_runner.hpp"
#include "runner/timing.hpp"
#include "sim/trace_export.hpp"
#include "util/cli.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int atoms = static_cast<int>(cli.get_int("atoms", 4000));
  const int steps = static_cast<int>(cli.get_int("steps", 20));
  const bool use_mpi = cli.get("transport", "shmem") == "mpi";

  // 1. Build a water-ethanol-like mixture (the paper's "grappa" analogue).
  md::GrappaSpec spec;
  spec.target_atoms = atoms;
  spec.density = 30.0;       // dilute enough that the jittered lattice
  spec.temperature = 200.0;  // relaxes gently over a short demo run
  md::System system = md::build_grappa(spec);
  const md::ForceField ff(md::grappa_atom_types(), /*cutoff=*/0.9);
  std::cout << "system: " << system.natoms() << " atoms, box "
            << system.box.length(0) << " nm, T0 = "
            << md::temperature(system, ff) << " K\n";

  // 2. Decompose over 4 ranks (the halo width is the pair-list radius).
  constexpr double kRlist = 1.0;
  dd::Decomposition dd(system, dd::GridDims{2, 2, 1}, kRlist);
  std::cout << "decomposition: 2x2x1, " << dd.plan().total_pulses()
            << " halo pulses/step, "
            << dd.states()[0].n_halo() << " halo atoms on rank 0\n";

  // 3. Wire up a simulated DGX-style node: 4 GPUs on NVLink.
  sim::Machine machine(sim::Topology::dgx_h100(1, 4),
                       sim::CostModel::h100_eos());
  machine.trace().set_enabled(true);
  pgas::World world(machine);
  msg::Comm comm(machine);

  // 4. Run the GPU-resident MD loop.
  runner::RunConfig config;
  config.transport = use_mpi ? halo::Transport::Mpi : halo::Transport::Shmem;
  runner::MdRunner runner(machine, world, comm,
                          halo::make_functional_workload(dd), config, &ff);
  runner.run(steps);

  // 5. Report physics and performance.
  const md::System final_state = dd.gather();
  std::cout << "after " << steps << " steps: T = "
            << md::temperature(final_state, ff) << " K\n";

  const auto perf = runner.perf();
  const auto timing = runner::analyze_device_timing(
      machine.trace(), runner.step_end_times(), dd.num_ranks());
  std::cout << "performance (simulated cluster): "
            << perf.ns_per_day << " ns/day, "
            << perf.ms_per_step * 1000.0 << " us/step\n"
            << "device timing: local " << timing.local_us
            << " us, non-local " << timing.nonlocal_us
            << " us, non-overlap " << timing.nonoverlap_us << " us\n";

  // 6. Optional observability dump (Chrome trace + fabric/PGAS counters).
  if (cli.get_bool("counters", false)) {
    std::cout << "\n";
    sim::print_counters(std::cout, machine.fabric().counters());
    pgas::print_counters(std::cout, world.counters());
    runner::print_trace_aggregate(std::cout,
                                  runner::aggregate_trace(machine.trace(), 2));
  }
  const std::string trace_json = cli.get("trace-json", "");
  if (!trace_json.empty()) {
    sim::ChromeTraceWriter writer;
    writer.add(machine.trace(), use_mpi ? "mpi" : "shmem");
    if (writer.write_file(trace_json)) {
      std::cout << "trace written: " << trace_json << " ("
                << writer.event_count() << " events)\n";
    } else {
      std::cerr << "failed to write trace file: " << trace_json << "\n";
      return 1;
    }
  }
  return 0;
}
